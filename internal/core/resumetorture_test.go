package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"nbschema/internal/engine"
	"nbschema/internal/fault"
	"nbschema/internal/obs"
	"nbschema/internal/value"
	"nbschema/internal/wal"
)

// Resume torture: crash a transformation mid-propagation after a fuzzy
// checkpoint captured its populated targets, restart from checkpoint + WAL
// suffix, and re-attach via Recover{Resume: true}. The resumed run must
// converge without re-doing any population work, and its final user-visible
// target image must equal a from-scratch transformation over the same
// source history.

// neverSync keeps the first run propagating forever, so the crash point is
// guaranteed to fire mid-propagation rather than racing synchronization.
func neverSync(Analysis) bool { return false }

func resumePhaseConfig() Config {
	c := tortureConfig()
	c.Analyzer = neverSync
	return c
}

// userImage projects a table down to its user-visible columns (hidden
// bookkeeping columns start with "_") and returns the encoded row set.
func userImage(t *testing.T, db *engine.DB, table string) map[string]bool {
	t.Helper()
	def, err := db.Catalog().Get(table)
	if err != nil {
		t.Fatalf("userImage(%s): %v", table, err)
	}
	var cols []int
	for i, c := range def.Columns {
		if !strings.HasPrefix(c.Name, "_") {
			cols = append(cols, i)
		}
	}
	img := make(map[string]bool)
	db.Table(table).Scan(func(row value.Tuple, _ wal.LSN) bool {
		img[row.Project(cols).Encode()] = true
		return true
	})
	return img
}

func sameUserImage(t *testing.T, a, b *engine.DB, table string) {
	t.Helper()
	ia, ib := userImage(t, a, table), userImage(t, b, table)
	if len(ia) != len(ib) {
		t.Errorf("table %s: resumed image has %d rows, scratch %d", table, len(ia), len(ib))
	}
	for k := range ia {
		if !ib[k] {
			t.Errorf("table %s: row %q only in resumed image", table, k)
		}
	}
	for k := range ib {
		if !ia[k] {
			t.Errorf("table %s: row %q only in scratch image", table, k)
		}
	}
}

// crashRun runs tr on its own goroutine behind the process-simulation
// boundary and returns a channel that yields the crash (or run error).
func crashRun(tr *Transformation) chan fault.Crash {
	crashed := make(chan fault.Crash, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				c, ok := fault.AsCrash(r)
				if !ok {
					panic(r)
				}
				crashed <- c
			}
		}()
		_ = tr.Run(context.Background())
	}()
	return crashed
}

// runResumeTorture drives one crash-checkpoint-resume cycle and checks the
// resume ≡ from-scratch property, returning the recovered database.
// crashAgain additionally crashes the first resumed run and resumes a second
// time from the same checkpoint.
func runResumeTorture(t *testing.T, tc tortureCase, workers int, crashAgain bool) *engine.DB {
	reg := fault.New()
	db := tc.newDB(t, tc.engineOpts(reg))
	tc.seed(t, db)

	tr, err := tc.buildWith(db, resumePhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	stop, wait := startLoad(db, tc.loadOp, 0x5eed)

	crashed := crashRun(tr)

	// Wait until propagation is past its first full iterations, then take a
	// checkpoint: the populated record is in the log below the checkpoint
	// begin, and progress records bound the resume cursor.
	deadline := time.Now().Add(10 * time.Second)
	for tr.Phase() != PhasePropagating || tr.Progress().Iteration < 2 {
		if time.Now().After(deadline) {
			t.Fatal("transformation never reached steady propagation")
		}
		time.Sleep(time.Millisecond)
	}
	var snap bytes.Buffer
	if _, err := db.Checkpoint(&snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	reg.Arm("core.propagate.batch", fault.OnHit(1), fault.CrashAction())
	var c fault.Crash
	select {
	case c = <-crashed:
	case <-time.After(30 * time.Second):
		t.Fatal("crash point never fired")
	}
	if c.Point != "core.propagate.batch" {
		t.Fatalf("crashed at %q", c.Point)
	}
	stop()
	if !wait(5 * time.Second) {
		t.Log("workload left blocked behind crash-held latches")
	}
	reg.Reset()

	var buf strings.Builder
	if _, err := db.Log().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String() + tornSuffix(t)

	// Restart supplies only the public source schema: the hidden targets
	// travel inside the checkpoint snapshot.
	reg2 := fault.New()
	opts := engine.Options{LockTimeout: 150 * time.Millisecond, LenientWAL: true, Faults: reg2}
	db2, cut, err := engine.RestartFromSnapshot(tc.sourceDefs(t), strings.NewReader(dump), bytes.NewReader(snap.Bytes()), opts)
	if err != nil {
		t.Fatalf("restart with checkpoint: %v", err)
	}
	if cut == nil || !cut.Torn() {
		t.Fatalf("torn tail not reported: %+v", cut)
	}
	if db2.RestoredCheckpoint() == nil {
		t.Fatal("checkpoint not restored")
	}
	for _, tgt := range tc.targets {
		tbl := db2.Table(tgt)
		if tbl == nil || tbl.Len() == 0 {
			t.Fatalf("populated target %s not restored from the snapshot", tgt)
		}
	}

	resumeCfg := tortureConfig()
	resumeCfg.PropagateWorkers = workers

	if crashAgain {
		// Crash the resumed run on its first propagation batch, then resume
		// once more from the same checkpoint.
		reg2.Arm("core.propagate.batch", fault.OnHit(1), fault.CrashAction())
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("resumed run did not crash")
				}
				if c, ok := fault.AsCrash(r); !ok || c.Point != "core.propagate.batch" {
					panic(r)
				}
			}()
			_, _ = Recover(context.Background(), db2, RecoverConfig{
				Targets: tc.targets, Resume: true, ResumeConfig: resumeCfg,
			})
		}()
		reg2.Reset()

		var buf2 strings.Builder
		if _, err := db2.Log().WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		db2, _, err = engine.RestartFromSnapshot(tc.sourceDefs(t),
			strings.NewReader(buf2.String()+tornSuffix(t)), bytes.NewReader(snap.Bytes()),
			engine.Options{LockTimeout: 150 * time.Millisecond, LenientWAL: true})
		if err != nil {
			t.Fatalf("second restart: %v", err)
		}
		if db2.RestoredCheckpoint() == nil {
			t.Fatal("checkpoint not restored on second restart")
		}
	}

	rep, err := Recover(context.Background(), db2, RecoverConfig{
		Targets: tc.targets, Resume: true, ResumeConfig: resumeCfg,
	})
	if err != nil {
		t.Fatalf("Recover with resume: %v", err)
	}
	if !rep.Resumed || rep.Transformation == nil {
		t.Fatalf("not resumed: %+v", rep)
	}
	if rep.ResumeCursor == 0 {
		t.Fatal("resume cursor not derived from the logged low-water marks")
	}
	if got := rep.Transformation.Phase(); got != PhaseDone {
		t.Fatalf("resumed transformation phase = %v", got)
	}

	// The tentpole acceptance: a resumed transformation never re-populates.
	var resumes int
	for _, ev := range rep.Transformation.Trace() {
		switch ev.Kind {
		case obs.EventPopulateChunk:
			t.Fatalf("resumed run re-populated: %+v", ev)
		case obs.EventResume:
			resumes++
			if ev.LSN != uint64(rep.ResumeCursor) {
				t.Errorf("resume event LSN %d != cursor %d", ev.LSN, rep.ResumeCursor)
			}
		}
	}
	if resumes != 1 {
		t.Errorf("resume events = %d, want 1", resumes)
	}
	tc.converged(t, rep.Transformation)

	// Resume ≡ scratch: a from-scratch transformation over the same source
	// history produces the identical user-visible target image.
	db3, _, err := engine.RestartFrom(tc.sourceDefs(t), strings.NewReader(dump),
		engine.Options{LockTimeout: 150 * time.Millisecond, LenientWAL: true})
	if err != nil {
		t.Fatalf("control restart: %v", err)
	}
	scratchCfg := tortureConfig()
	scratchCfg.PropagateWorkers = workers
	tr3, err := tc.buildWith(db3, scratchCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr3.Run(context.Background()); err != nil {
		t.Fatalf("scratch run: %v", err)
	}
	for _, tgt := range tc.targets {
		sameUserImage(t, db2, db3, tgt)
	}
	return db2
}

// resumedDatabase returns a database holding a transformation completed via
// crash-checkpoint-resume, for idempotency tests layered on top.
func resumedDatabase(t *testing.T, tc tortureCase) *engine.DB {
	t.Helper()
	return runResumeTorture(t, tc, 0, false)
}

func TestCrashTortureResumeFOJ(t *testing.T) {
	runResumeTorture(t, fojTortureCase(), 0, false)
}

func TestCrashTortureResumeSplit(t *testing.T) {
	runResumeTorture(t, splitTortureCase(), 0, false)
}

func TestCrashTortureResumeParallel(t *testing.T) {
	// The image-equality property must also hold under parallel propagation.
	runResumeTorture(t, fojTortureCase(), 8, false)
	runResumeTorture(t, splitTortureCase(), 8, false)
}

func TestCrashTortureResumeThenCrashAgain(t *testing.T) {
	runResumeTorture(t, fojTortureCase(), 0, true)
}

// TestCrashTortureCheckpointMidSnapshot crashes the checkpointing goroutine
// between partition writes while a workload runs: the truncated snapshot
// must be rejected at restart and recovery falls back to full replay,
// converging row-for-row with a control restart.
func TestCrashTortureCheckpointMidSnapshot(t *testing.T) {
	runCheckpointCrashTorture(t, "storage.snapshot.partition", 3)
}

// TestCrashTortureCheckpointTornEnd crashes between the checkpoint-begin and
// checkpoint-end records: the log keeps an unmatched begin and the snapshot
// footer is never sealed; restart must ignore the checkpoint entirely.
func TestCrashTortureCheckpointTornEnd(t *testing.T) {
	runCheckpointCrashTorture(t, "engine.checkpoint.end", 1)
}

func runCheckpointCrashTorture(t *testing.T, point string, hit int64) {
	tc := fojTortureCase()
	reg := fault.New()
	db := tc.newDB(t, tc.engineOpts(reg))
	tc.seed(t, db)
	stop, wait := startLoad(db, tc.loadOp, 0xc4a5)
	time.Sleep(5 * time.Millisecond)

	reg.Arm(point, fault.OnHit(hit), fault.CrashAction())
	var snap bytes.Buffer
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("checkpoint did not crash at %s", point)
			}
			if c, ok := fault.AsCrash(r); !ok || c.Point != point {
				panic(r)
			}
		}()
		_, _ = db.Checkpoint(&snap)
	}()
	stop()
	if !wait(5 * time.Second) {
		t.Fatal("workload did not stop")
	}
	reg.Reset()

	var buf strings.Builder
	if _, err := db.Log().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String() + tornSuffix(t)
	opts := engine.Options{LockTimeout: 150 * time.Millisecond, LenientWAL: true}

	db2, _, err := engine.RestartFromSnapshot(tc.sourceDefs(t), strings.NewReader(dump), bytes.NewReader(snap.Bytes()), opts)
	if err != nil {
		t.Fatalf("restart with crashed checkpoint: %v", err)
	}
	if db2.RestoredCheckpoint() != nil {
		t.Fatal("crashed checkpoint was accepted")
	}

	db3, _, err := engine.RestartFrom(tc.sourceDefs(t), strings.NewReader(dump), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range tc.sources {
		got, want := db2.Table(src).Rows(), db3.Table(src).Rows()
		if len(got) != len(want) {
			t.Fatalf("source %s: %d rows, control %d", src, len(got), len(want))
		}
		for k, w := range want {
			if g, ok := got[k]; !ok || !g.Equal(w) {
				t.Fatalf("source %s row %q diverged", src, k)
			}
		}
	}
}
