package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nbschema/internal/catalog"
	"nbschema/internal/engine"
	"nbschema/internal/value"
)

// Many-to-many example: students R(sid, name, course) and teachers
// S(tid, course, tname) joined on course. Several students share a course
// and several teachers teach the same course.

func newM2MDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New(engine.Options{LockTimeout: 150 * time.Millisecond})
	r, err := catalog.NewTableDef("R", []catalog.Column{
		{Name: "sid", Type: value.KindInt},
		{Name: "sname", Type: value.KindString, Nullable: true},
		{Name: "course", Type: value.KindInt, Nullable: true},
	}, []string{"sid"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := catalog.NewTableDef("S", []catalog.Column{
		{Name: "tid", Type: value.KindInt},
		{Name: "course", Type: value.KindInt, Nullable: true},
		{Name: "tname", Type: value.KindString, Nullable: true},
	}, []string{"tid"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	return db
}

func student(sid int64, name string, course int64) value.Tuple {
	return value.Tuple{value.Int(sid), value.Str(name), value.Int(course)}
}

func teacher(tid, course int64, name string) value.Tuple {
	return value.Tuple{value.Int(tid), value.Int(course), value.Str(name)}
}

func seedM2M(t *testing.T, db *engine.DB) {
	t.Helper()
	mustExec(t, db, func(tx *engine.Txn) error {
		for _, r := range []value.Tuple{
			student(1, "ann", 100), student(2, "bob", 100), student(3, "cal", 200), student(4, "dag", 300),
		} {
			if err := tx.Insert("R", r); err != nil {
				return err
			}
		}
		for _, s := range []value.Tuple{
			teacher(10, 100, "smith"), teacher(11, 100, "jones"), teacher(12, 200, "berg"), teacher(13, 400, "moe"),
		} {
			if err := tx.Insert("S", s); err != nil {
				return err
			}
		}
		return nil
	})
}

func newM2MOp(t *testing.T, db *engine.DB, cfg Config) (*Transformation, *fojOp) {
	t.Helper()
	tr, err := NewFullOuterJoin(db, JoinSpec{
		Target: "T", Left: "R", Right: "S",
		On:         [][2]string{{"course", "course"}},
		ManyToMany: true,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.op.(*fojOp)
}

func preparedM2M(t *testing.T, db *engine.DB, cfg Config) (*Transformation, *fojOp) {
	t.Helper()
	tr, op := newM2MOp(t, db, cfg)
	if err := op.Prepare(); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	tr.cursor = db.Log().End() + 1
	tr.mu.Unlock()
	if _, err := op.Populate(func(int) {}); err != nil {
		t.Fatal(err)
	}
	return tr, op
}

func TestM2MInitialImage(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	_, op := preparedM2M(t, db, Config{})
	// course 100: 2 students × 2 teachers = 4 rows; course 200: 1×1;
	// course 300: student only (1); course 400: teacher only (1).
	if op.tTbl.Len() != 7 {
		t.Fatalf("T has %d rows, want 7", op.tTbl.Len())
	}
	assertConverged(t, op)
}

func TestM2MInsertR(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := preparedM2M(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// A student joining course 100 pairs with both teachers.
		if err := tx.Insert("R", student(5, "eva", 100)); err != nil {
			return err
		}
		// A student joining course 400 consumes the teacher-only row.
		return tx.Insert("R", student(6, "fin", 400))
	})
	propagateAll(t, tr)
	assertConverged(t, op)
	if rows := op.lookup(IndexRKey, value.Tuple{value.Int(5)}); len(rows) != 2 {
		t.Errorf("eva pairs = %d, want 2", len(rows))
	}
}

func TestM2MInsertS(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := preparedM2M(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// A third teacher of course 100 pairs with both students.
		if err := tx.Insert("S", teacher(14, 100, "hansen")); err != nil {
			return err
		}
		// A teacher of course 300 consumes the student-only row.
		return tx.Insert("S", teacher(15, 300, "lie"))
	})
	propagateAll(t, tr)
	assertConverged(t, op)
}

func TestM2MDeleteR(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := preparedM2M(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// Deleting cal (sole student of course 200) must preserve teacher
		// berg as a teacher-only row.
		return tx.Delete("R", value.Tuple{value.Int(3)})
	})
	propagateAll(t, tr)
	assertConverged(t, op)
}

func TestM2MDeleteS(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := preparedM2M(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// Deleting smith leaves jones paired with both students.
		if err := tx.Delete("S", value.Tuple{value.Int(10)}); err != nil {
			return err
		}
		// Deleting berg (sole teacher of 200) leaves cal student-only.
		return tx.Delete("S", value.Tuple{value.Int(12)})
	})
	propagateAll(t, tr)
	assertConverged(t, op)
}

func TestM2MUpdateRJoin(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := preparedM2M(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// ann moves from course 100 (2 teachers) to 200 (1 teacher).
		return tx.Update("R", value.Tuple{value.Int(1)}, []string{"course"}, value.Tuple{value.Int(200)})
	})
	propagateAll(t, tr)
	assertConverged(t, op)
	if rows := op.lookup(IndexRKey, value.Tuple{value.Int(1)}); len(rows) != 1 {
		t.Errorf("ann pairs = %d, want 1", len(rows))
	}
}

func TestM2MUpdateSJoin(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := preparedM2M(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// smith switches from course 100 to 300 (dag's course).
		return tx.Update("S", value.Tuple{value.Int(10)}, []string{"course"}, value.Tuple{value.Int(300)})
	})
	propagateAll(t, tr)
	assertConverged(t, op)
}

func TestM2MPlainUpdates(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := preparedM2M(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// smith's rename must fan out to both of smith's T rows.
		if err := tx.Update("S", value.Tuple{value.Int(10)}, []string{"tname"}, value.Tuple{value.Str("SMITH")}); err != nil {
			return err
		}
		// ann's rename must fan out to both of ann's T rows.
		return tx.Update("R", value.Tuple{value.Int(1)}, []string{"sname"}, value.Tuple{value.Str("ANN")})
	})
	propagateAll(t, tr)
	assertConverged(t, op)
}

func TestM2MConvergenceUnderLoad(t *testing.T) {
	db := newM2MDB(t)
	seedM2M(t, db)
	tr, op := newM2MOp(t, db, Config{KeepSources: true, MaxIterations: 500})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(time.Duration(100+rng.Intn(100)) * time.Microsecond)
				tx := db.Begin()
				var err error
				switch rng.Intn(7) {
				case 0:
					err = tx.Insert("R", student(rng.Int63n(100), randName(rng), rng.Int63n(8)*100))
				case 1:
					err = tx.Insert("S", teacher(rng.Int63n(50), rng.Int63n(8)*100, randName(rng)))
				case 2:
					err = tx.Delete("R", value.Tuple{value.Int(rng.Int63n(100))})
				case 3:
					err = tx.Delete("S", value.Tuple{value.Int(rng.Int63n(50))})
				case 4:
					err = tx.Update("R", value.Tuple{value.Int(rng.Int63n(100))},
						[]string{"course"}, value.Tuple{value.Int(rng.Int63n(8) * 100)})
				case 5:
					err = tx.Update("S", value.Tuple{value.Int(rng.Int63n(50))},
						[]string{"course"}, value.Tuple{value.Int(rng.Int63n(8) * 100)})
				case 6:
					err = tx.Update("S", value.Tuple{value.Int(rng.Int63n(50))},
						[]string{"tname"}, value.Tuple{value.Str(randName(rng))})
				}
				if err != nil {
					if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, engine.ErrTxnDone) {
						t.Errorf("abort: %v", aerr)
						return
					}
					continue
				}
				if cerr := tx.Commit(); cerr != nil {
					if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, engine.ErrTxnDone) {
						t.Errorf("abort after commit failure: %v", aerr)
						return
					}
				}
			}
		}(int64(w))
	}
	time.Sleep(20 * time.Millisecond)
	err := tr.Run(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertConverged(t, op)
}
