package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"nbschema/internal/catalog"
	"nbschema/internal/engine"
	"nbschema/internal/obs"
	"nbschema/internal/value"
	"nbschema/internal/wal"
)

func TestFreshCacheMonotonicFrontier(t *testing.T) {
	log := wal.NewLog()
	now := time.Now().UnixNano()
	// LSN 1..6: begin, commit@t1, begin, commit@t2, untimestamped commit, noise.
	log.Append(&wal.Record{Txn: 1, Type: wal.TypeBegin})
	log.Append(&wal.Record{Txn: 1, Type: wal.TypeCommit, Time: now})
	log.Append(&wal.Record{Txn: 2, Type: wal.TypeBegin})
	log.Append(&wal.Record{Txn: 2, Type: wal.TypeCommit, Time: now + 1000})
	log.Append(&wal.Record{Txn: 3, Type: wal.TypeCommit}) // v1/v2 vintage: no Time
	log.Append(&wal.Record{Txn: 4, Type: wal.TypeBegin})

	var c freshCache
	lsn, ts := c.oldest(log, 0, log.End())
	if lsn != 2 || ts != now {
		t.Fatalf("oldest = (%d, %d), want (2, %d)", lsn, ts, now)
	}
	// Unapplied cached entry is reused without rescanning.
	if lsn, _ = c.oldest(log, 1, log.End()); lsn != 2 {
		t.Fatalf("cached oldest = %d, want 2", lsn)
	}
	// Applying past it invalidates the cache and finds the next one.
	if lsn, ts = c.oldest(log, 2, log.End()); lsn != 4 || ts != now+1000 {
		t.Fatalf("after apply, oldest = (%d, %d), want (4, %d)", lsn, ts, now+1000)
	}
	// Applying past every timestamped commit: fresh, and the frontier is at
	// end so a repeat poll scans nothing.
	if lsn, _ = c.oldest(log, 5, log.End()); lsn != 0 {
		t.Fatalf("fresh target still reports oldest %d", lsn)
	}
	if lsn, _ = c.oldest(log, 5, log.End()); lsn != 0 {
		t.Fatalf("repeat poll reports oldest %d", lsn)
	}
	// New timestamped commit past the frontier is picked up.
	log.Append(&wal.Record{Txn: 5, Type: wal.TypeCommit, Time: now + 2000})
	if lsn, _ = c.oldest(log, 5, log.End()); lsn != 7 {
		t.Fatalf("new commit not found: oldest = %d, want 7", lsn)
	}
}

func TestNoteAppliedIsMonotonic(t *testing.T) {
	db := newSplitDB(t)
	tr, _ := newSplitOp(t, db, Config{})
	tr.noteApplied(5)
	tr.noteApplied(3) // stale publication from a slower worker must not regress
	if got := tr.appliedLSN.Load(); got != 5 {
		t.Fatalf("appliedLSN = %d, want 5", got)
	}
	tr.noteApplied(9)
	if got := tr.appliedLSN.Load(); got != 9 {
		t.Fatalf("appliedLSN = %d, want 9", got)
	}
}

// TestFreshnessWatermarksE2E runs a split against live traffic and checks the
// watermark arc: lag grows while commits pile up unapplied, the high-water
// mark advances with propagation, and a finished transformation reports a
// fresh target (lag zero) regardless of later source writes.
func TestFreshnessWatermarksE2E(t *testing.T) {
	reg := obs.NewRegistry()
	db := engine.New(engine.Options{LockTimeout: 150 * time.Millisecond, Obs: reg})
	def, err := catalog.NewTableDef("T", []catalog.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "name", Type: value.KindString, Nullable: true},
		{Name: "zip", Type: value.KindInt},
		{Name: "city", Type: value.KindString, Nullable: true},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	const rows = 512
	mustExec(t, db, func(tx *engine.Txn) error {
		for i := int64(1); i <= rows; i++ {
			if err := tx.Insert("T", tRow(i, "n", i%7, "c")); err != nil {
				return err
			}
		}
		return nil
	})

	// Low priority slows population and propagation down enough that the
	// traffic loop below runs while the transformation is live.
	tr, err2 := NewSplit(db, splitSpec(), Config{LagSLO: time.Second, Priority: 0.05})
	if err2 != nil {
		t.Fatal(err2)
	}
	done := make(chan error, 1)
	go func() { done <- tr.Run(context.Background()) }()
	// Wait for the population cut before generating traffic; commits made
	// before it are covered by the initial image and carry no lag.
	for ph := tr.Phase(); ph == PhaseIdle || ph == PhasePreparing; ph = tr.Phase() {
		time.Sleep(100 * time.Microsecond)
	}

	// Traffic and freshness polling from the main goroutine until the run
	// ends: every commit here is timestamped and lands past the population
	// cut, so the watermark has something to lag on. Once both watermarks
	// have been observed the traffic stops — a closed-loop updater would
	// outrun a priority-0.05 transformation indefinitely.
	var sawLag, sawApplied atomic.Bool
	deadline := time.Now().Add(20 * time.Second)
	var trErr error
	for i := int64(0); ; i++ {
		select {
		case trErr = <-done:
		default:
			if (!sawLag.Load() || !sawApplied.Load()) && time.Now().Before(deadline) {
				tx := db.Begin()
				err := tx.Update("T", value.Tuple{value.Int(i%rows + 1)},
					[]string{"name"}, value.Tuple{value.Str("renamed")})
				if err == nil {
					err = tx.Commit()
				}
				if err != nil {
					_ = tx.Abort() // lock conflicts with the transformation are fine
				}
			} else {
				time.Sleep(time.Millisecond) // drain: let the run finish
			}
			f := tr.Freshness()
			if f.Lag > 0 && !f.OldestUnappliedCommit.IsZero() {
				sawLag.Store(true)
			}
			if f.AppliedLSN > 0 {
				sawApplied.Store(true)
			}
			continue
		}
		break
	}
	if trErr != nil {
		t.Fatalf("Run: %v", trErr)
	}

	if !sawLag.Load() {
		t.Error("never observed a positive lag watermark during the run")
	}
	if !sawApplied.Load() {
		t.Error("applied-LSN high-water mark never advanced")
	}
	f := tr.Freshness()
	if f.Lag != 0 || f.Backlog != 0 {
		t.Errorf("terminal freshness = %+v, want lag 0, backlog 0", f)
	}
	if !tr.SwitchoverReady(0) {
		t.Error("finished transformation not switchover-ready at maxLag 0")
	}
	if f.AppliedLSN == 0 {
		t.Error("terminal freshness lost the applied-LSN high-water mark")
	}
	// The lag instrumentation fed the histogram: every propagated commit
	// record was measured.
	if h, ok := reg.Snapshot().Histograms["core.commit_lag"]; !ok || h.Count == 0 {
		t.Error("core.commit_lag histogram recorded nothing")
	}
}

// TestFreshnessSLOViolationTraced checks that a stale target and a hopeless
// SLO produce an EventFreshness trace event naming the violation: a prepared
// split with a timestamped commit past the population cut is measurably
// stale, so emitFreshness (what synchronize runs at the switchover decision)
// must report lag and the SLO breach.
func TestFreshnessSLOViolationTraced(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	ring := obs.NewRingSink(64)
	tr, _ := preparedSplit(t, db, Config{
		LagSLO: time.Nanosecond, // unattainable: any measurable lag violates
		Sink:   ring,
	})
	// A commit past the population cut: unapplied, timestamped, aging.
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(1)}, []string{"name"}, value.Tuple{value.Str("x")})
	})
	time.Sleep(time.Millisecond) // let the unapplied commit age measurably
	tr.emitFreshness()

	var found *obs.Event
	for _, ev := range ring.Events() {
		if ev.Kind == obs.EventFreshness {
			found = &ev
			break
		}
	}
	if found == nil {
		t.Fatal("no EventFreshness logged")
	}
	if found.Duration <= 0 || found.Remaining == 0 {
		t.Errorf("freshness event shows no staleness: %+v", found)
	}
	if found.Err == "" {
		t.Errorf("freshness event names no SLO violation: %+v", found)
	}
}
