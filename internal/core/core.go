// Package core implements the paper's contribution: non-blocking full outer
// join and split schema transformations, driven by a four-step framework
// (Section 3):
//
//  1. Preparation — create the hidden target tables and their indexes.
//  2. Initial population — write a fuzzy mark, read the source tables
//     fuzzily (no transactional locks), apply the operator, insert the
//     initial image.
//  3. Log propagation — redo the log onto the targets with idempotent,
//     operator-specific rules, in cycles bounded by fuzzy marks, at a
//     configurable low priority, until an analysis step decides the targets
//     are close enough to synchronize.
//  4. Synchronization — blocking commit, non-blocking abort, or
//     non-blocking commit (Section 3.4), with transferred-lock enforcement
//     per the Fig. 2 compatibility matrix.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nbschema/internal/engine"
	"nbschema/internal/fault"
	"nbschema/internal/lock"
	"nbschema/internal/obs"
	"nbschema/internal/storage"
	"nbschema/internal/value"
	"nbschema/internal/wal"
)

// Phase is the lifecycle phase of a transformation.
type Phase int32

const (
	// PhaseIdle means Run has not been called.
	PhaseIdle Phase = iota
	// PhasePreparing covers target-table and index creation (§3.1).
	PhasePreparing
	// PhasePopulating covers the fuzzy read and initial image insert (§3.2).
	PhasePopulating
	// PhasePropagating covers the log-propagation cycles (§3.3).
	PhasePropagating
	// PhaseSynchronizing covers the final latched propagation (§3.4).
	PhaseSynchronizing
	// PhaseDraining covers post-switchover background propagation while old
	// transactions finish or roll back (non-blocking strategies).
	PhaseDraining
	// PhaseDone means the transformation committed and sources are dropped.
	PhaseDone
	// PhaseAborted means the transformation was abandoned and its target
	// tables deleted.
	PhaseAborted
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhasePreparing:
		return "preparing"
	case PhasePopulating:
		return "populating"
	case PhasePropagating:
		return "propagating"
	case PhaseSynchronizing:
		return "synchronizing"
	case PhaseDraining:
		return "draining"
	case PhaseDone:
		return "done"
	case PhaseAborted:
		return "aborted"
	default:
		return fmt.Sprintf("phase(%d)", int32(p))
	}
}

// SyncStrategy selects how synchronization completes the transformation.
type SyncStrategy int

const (
	// NonBlockingAbort latches the sources for one brief final propagation
	// and then forces transactions that were active on the source tables to
	// abort. Nonconflicting new transactions proceed immediately. This is
	// the strategy the paper's experiments use (sync < 1 ms).
	NonBlockingAbort SyncStrategy = iota
	// NonBlockingCommit latches the sources briefly and then lets old
	// transactions keep running against the source tables, with locks
	// mirrored between old and new tables until they finish.
	NonBlockingCommit
	// BlockingCommit blocks new transactions from the involved tables,
	// drains transactions holding locks on them, and then performs the
	// final propagation. Violates the non-blocking requirement; included as
	// the paper's baseline.
	BlockingCommit
)

// String returns the strategy name.
func (s SyncStrategy) String() string {
	switch s {
	case NonBlockingAbort:
		return "non-blocking-abort"
	case NonBlockingCommit:
		return "non-blocking-commit"
	case BlockingCommit:
		return "blocking-commit"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// StallPolicy decides what to do when log propagation cannot keep up with
// log generation ("If more log records are produced than the propagator is
// able to process, the synchronization is never started. If this is the
// case, the transformation should either be aborted or get higher
// priority.", §3.3).
type StallPolicy int

const (
	// StallBoost doubles the transformation priority on each detected stall.
	StallBoost StallPolicy = iota
	// StallAbort abandons the transformation on a detected stall.
	StallAbort
)

// Analysis summarizes one completed propagation iteration for the analyzer.
type Analysis struct {
	// Remaining is the number of log records generated during the iteration
	// that are still unpropagated (raw log records: the next iteration will
	// scan — and, with compaction enabled, compact — all of them).
	Remaining int
	// Applied is the number of log records applied in the iteration, after
	// net-effect compaction. Without compaction it equals Scanned.
	Applied int
	// Scanned is the number of raw log records the iteration consumed
	// before compaction. Zero on idle cycles.
	Scanned int
	// Duration is the wall-clock time of the iteration.
	Duration time.Duration
	// Iteration is the 1-based iteration number.
	Iteration int
}

// Analyzer decides, after each propagation iteration, whether to start
// synchronization (§3.3 suggests count-, time- and estimate-based policies).
type Analyzer func(Analysis) bool

// CountAnalyzer synchronizes when at most threshold log records remain.
func CountAnalyzer(threshold int) Analyzer {
	return func(a Analysis) bool { return a.Remaining <= threshold }
}

// TimeAnalyzer synchronizes when the last iteration completed within limit —
// the next (latched) iteration is then expected to be at most that long.
func TimeAnalyzer(limit time.Duration) Analyzer {
	return func(a Analysis) bool { return a.Duration <= limit }
}

// EstimateAnalyzer synchronizes when the estimated time to propagate the
// remaining records (at the last iteration's observed rate) is below limit.
// The rate is per *scanned* record: Remaining counts raw log records, and
// the next iteration will compact them just like this one did, so the raw
// consumption rate — which already folds in the compaction pass and the
// cheapness of coalesced-away records — is the right per-record cost.
func EstimateAnalyzer(limit time.Duration) Analyzer {
	return func(a Analysis) bool {
		processed := a.Scanned
		if processed == 0 {
			processed = a.Applied
		}
		if processed == 0 || a.Duration == 0 {
			return a.Remaining == 0
		}
		perRecord := a.Duration / time.Duration(processed)
		return time.Duration(a.Remaining)*perRecord <= limit
	}
}

// CompactionMode selects whether propagation coalesces each interval's log
// tail to its per-key net effect before rule application (see compact.go).
type CompactionMode int

const (
	// CompactionDefault inherits the surrounding default (on, unless the
	// database was opened with compaction disabled).
	CompactionDefault CompactionMode = iota
	// CompactionOn compacts every propagation interval.
	CompactionOn
	// CompactionOff replays the raw log tail — the ablation baseline.
	CompactionOff
)

// enabled reports whether this mode turns compaction on; only an explicit
// CompactionOff disables it.
func (m CompactionMode) enabled() bool { return m != CompactionOff }

// Config tunes a transformation. The zero value is usable: full priority,
// count-based analysis with a small threshold, non-blocking abort.
type Config struct {
	// Priority is the fraction of wall-clock time the background
	// transformation may consume, in (0, 1]. 0 selects 1.0. Lower values
	// interfere less with user transactions but lengthen the
	// transformation (Fig. 4d).
	Priority float64
	// Strategy selects the synchronization strategy.
	Strategy SyncStrategy
	// Analyzer decides when to stop iterating and synchronize. Nil selects
	// CountAnalyzer(64).
	Analyzer Analyzer
	// MaxIterations bounds propagation cycles (0 = unlimited).
	MaxIterations int
	// StallPolicy selects the reaction to a propagation stall.
	StallPolicy StallPolicy
	// StallIterations is how many consecutive non-shrinking iterations
	// count as a stall (0 selects 8).
	StallIterations int
	// StallTimeout bounds a single propagation iteration: when exceeded the
	// stall policy fires immediately, mid-iteration (a starved iteration
	// may otherwise never reach the between-iterations analysis). 0
	// disables the in-iteration check.
	StallTimeout time.Duration
	// BatchSize is the number of log records (or initial-image rows)
	// processed per priority-throttle slice (0 selects 64).
	BatchSize int
	// FuzzyChunk is the chunk size of fuzzy scans (0 selects 256).
	FuzzyChunk int
	// SnapshotPopulate builds the initial image from a snapshot-isolation
	// read view instead of a fuzzy scan: population opens a snapshot right
	// after the begin fuzzy mark and every source scan reads the newest
	// versions committed at or before its timestamp — a transactionally
	// consistent cut, with no mid-scan updates mixed in. Propagation still
	// starts from the same fuzzy-mark position; the idempotent LSN-guarded
	// rules absorb the overlap. Requires engine.Options.SnapshotReads;
	// without it population falls back to the fuzzy scan (the 2PL ablation
	// arm, and the default).
	SnapshotPopulate bool
	// CheckConsistency enables §5.3 handling for split transformations:
	// C/U flags and the background consistency checker. Ignored by FOJ.
	CheckConsistency bool
	// KeepSources leaves the source tables in place (dropping state)
	// instead of deleting them after the drain completes. Useful for
	// verification and tests.
	KeepSources bool
	// SyncLatchTimeout bounds each attempt to take a source table's latch
	// at the start of synchronization (0 selects 50ms). A latch that stays
	// busy past the timeout degrades synchronization to another catch-up
	// propagation round instead of blocking indefinitely.
	SyncLatchTimeout time.Duration
	// SyncLatchRetries is how many timed latch attempts (each followed by a
	// catch-up round and exponential backoff) synchronization makes before
	// falling back to a blocking acquisition, which writer preference
	// guarantees will finish (0 selects 3).
	SyncLatchRetries int
	// PropagateWorkers is the number of worker goroutines used for the
	// parallel parts of a transformation: initial population (one heap
	// partition at a time per worker) and log propagation (batches of
	// records with disjoint conflict keys applied concurrently, when the
	// operator supports it). 0 selects DefaultPropagateWorkers; 1 runs both
	// serially — the ablation baseline and the deterministic-trace mode.
	PropagateWorkers int
	// Compaction selects net-effect compaction of each propagation
	// interval before rule application (operators that implement netKey
	// only; FOJ always replays raw). The zero value enables it;
	// CompactionOff is the ablation baseline.
	Compaction CompactionMode
	// Sink receives the transformation's structured trace events in addition
	// to the built-in bounded ring buffer (readable via Trace). Nil keeps
	// just the ring.
	Sink obs.Sink
	// Timeline records transformation spans (phases, iterations, worker
	// groups, populate partitions) for the Chrome trace-event export. Nil
	// falls back to the database's timeline (engine.Options.Timeline); a nil
	// or disabled recorder costs one atomic load per instrumented site.
	Timeline *obs.Timeline
	// LagSLO is the freshness service-level objective: the maximum
	// source-commit→target-apply lag considered healthy. Synchronization
	// logs an EventFreshness trace event naming the violation when the lag
	// watermark exceeds it; 0 disables the check (the event still reports
	// the watermarks).
	LagSLO time.Duration
}

func (c Config) withDefaults() Config {
	if c.Priority <= 0 || c.Priority > 1 {
		c.Priority = 1
	}
	if c.Analyzer == nil {
		c.Analyzer = CountAnalyzer(64)
	}
	if c.StallIterations <= 0 {
		c.StallIterations = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.FuzzyChunk <= 0 {
		c.FuzzyChunk = 256
	}
	if c.SyncLatchTimeout <= 0 {
		c.SyncLatchTimeout = 50 * time.Millisecond
	}
	if c.SyncLatchRetries <= 0 {
		c.SyncLatchRetries = 3
	}
	if c.PropagateWorkers <= 0 {
		c.PropagateWorkers = DefaultPropagateWorkers()
	}
	return c
}

// Metrics reports what a transformation did. Durations are wall clock.
type Metrics struct {
	PopulationDuration  time.Duration
	PropagationDuration time.Duration
	// SyncLatchDuration is the time the source tables were held under
	// exclusive latches during the final propagation — the only window in
	// which user transactions pause (the paper reports < 1 ms).
	SyncLatchDuration time.Duration
	DrainDuration     time.Duration
	TotalDuration     time.Duration
	Iterations int
	// RecordsApplied is the number of log records propagation applied —
	// after net-effect compaction, when enabled. RecordsScanned is the raw
	// number of log records consumed; their ratio is the compaction win.
	RecordsApplied int64
	RecordsScanned int64
	// CompactIn/CompactOut total the records entering and leaving the
	// compactor; CompactFences counts records that passed through as
	// global fences, CompactFencedKeys the open per-key runs those fences
	// cut short. All zero when compaction is off or unsupported.
	CompactIn         int64
	CompactOut        int64
	CompactFences     int64
	CompactFencedKeys int64
	InitialImageRows  int64
	DoomedTxns        int
	CCRounds          int64
	CCRepairs         int64
}

// Transformation errors.
var (
	// ErrStalled reports that propagation could not keep up with log
	// generation and StallAbort was configured.
	ErrStalled = errors.New("core: propagation stalled behind log generation")
	// ErrAborted reports the transformation was cancelled.
	ErrAborted = errors.New("core: transformation aborted")
)

// operator is the transformation-specific half of the framework: FOJ and
// split implement it.
type operator interface {
	// Prepare creates the hidden target tables and their indexes.
	Prepare() error
	// Populate fuzzily reads the sources and inserts the initial image,
	// pacing itself through tick.
	Populate(tick func(int)) (rows int64, err error)
	// Sources are the tables whose log records drive propagation.
	Sources() []string
	// Targets are the created tables, published at synchronization.
	Targets() []string
	// Apply redoes one operation log record onto the targets.
	Apply(rec *wal.Record) error
	// MirrorKeys maps a locked source record to the target records its
	// locks transfer to, as (table, encoded key) pairs.
	MirrorKeys(table string, key value.Tuple) []TargetKey
	// MaintenanceTick lets the operator run background work between
	// batches (the split consistency checker).
	MaintenanceTick() error
	// ReadyToSync reports whether the operator allows synchronization to
	// start (the split checker requires all S records consistent, §5.3).
	ReadyToSync() bool
	// CCStats returns consistency-checker rounds and repairs (0, 0 when
	// not applicable).
	CCStats() (rounds, repairs int64)
	// Cleanup drops the target tables (transformation abort).
	Cleanup() error
	// describe returns the lifecycle metadata (kind + spec) serialized into
	// transform-start records so crash recovery can rebuild the operator.
	describe() transformMeta
	// reattach re-binds the operator's target-table handles to restored
	// storage after a checkpoint restart, recreating target indexes. The
	// target tables must already exist (loaded from the snapshot).
	reattach() error
}

// TargetKey names one target-table record.
type TargetKey struct {
	Table string
	Key   string // encoded primary key
}

// Transformation drives one schema transformation end to end.
type Transformation struct {
	db     *engine.DB
	op     operator
	cfg    Config
	shadow *lock.ShadowTable
	faults *fault.Registry // inherited from db; nil-safe

	phase        atomic.Int32
	priority     atomic.Uint64 // math.Float64bits
	cancel       atomic.Bool
	latchTargets atomic.Bool // post-switchover: serialize rule application
	applied      atomic.Int64 // records applied so far, live (Progress)

	// comp coalesces propagation intervals to their net effect; owned by
	// the run goroutine (lazily created on first compacted range).
	comp *compactor

	// Observability (see obs.go). sink is never nil after newTransformation;
	// ring is the built-in bounded buffer behind Trace.
	sink       obs.Sink
	ring       *obs.RingSink
	seq        atomic.Int64
	popRows    atomic.Int64
	ruleCounts [12]atomic.Int64
	lastRules  [12]int64 // baseline for per-iteration deltas (run goroutine only)

	// Registry-backed metric handles (nil when the DB has no registry).
	mPropagated  *obs.Counter
	mIterations  *obs.Counter
	mRunning     *obs.Gauge
	mBacklog     *obs.Gauge
	mCompactIn   *obs.Counter
	mCompactOut  *obs.Counter
	mCompactFenc *obs.Counter
	mLag         *obs.Histogram // core.commit_lag: source-commit→target-apply
	mAppliedLSN  *obs.Gauge     // core.applied_lsn: high-water mark
	mLagMs       *obs.Gauge     // core.lag_ms: low-water freshness lag

	// Freshness watermarks (freshness.go). appliedLSN is the high-water
	// mark: every log record at or below it has been applied to the targets.
	// lastLagNs is the commit lag observed at the most recently applied
	// timestamped commit record.
	appliedLSN atomic.Uint64
	lastLagNs  atomic.Int64
	fresh      freshCache

	// tl records timeline spans; nil-safe and shared with the engine unless
	// Config.Timeline overrides it.
	tl *obs.Timeline

	// Population read view (Config.SnapshotPopulate). Written by populate
	// before the scan workers start and cleared after they join, so the
	// worker goroutines read it race-free via their start edge.
	popSnapOn bool
	popTS     uint64

	mu       sync.Mutex
	metrics  Metrics
	cursor   wal.LSN // next log record to propagate
	lastA    Analysis
	runStart time.Time
	// ccPending tracks consistency-checker rounds in flight: checked key →
	// LSN of the CC-begin record; invalidated when the key is touched.
	ccPending map[string]wal.LSN
}

func newTransformation(db *engine.DB, cfg Config) *Transformation {
	tr := &Transformation{
		db:        db,
		cfg:       cfg.withDefaults(),
		shadow:    lock.NewShadowTable(),
		faults:    db.Faults(),
		ccPending: make(map[string]wal.LSN),
	}
	tr.tl = tr.cfg.Timeline
	if tr.tl == nil {
		tr.tl = db.Timeline()
	}
	tr.ring = obs.NewRingSink(0)
	sinks := obs.MultiSink{tr.ring}
	if tr.cfg.Sink != nil {
		sinks = append(sinks, tr.cfg.Sink)
	}
	if tr.tl != nil {
		// Phase transitions, iterations and lifecycle instants become
		// timeline spans on the coordinator track for free.
		sinks = append(sinks, obs.TimelineSink(tr.tl))
	}
	tr.sink = obs.Sink(tr.ring)
	if len(sinks) > 1 {
		tr.sink = sinks
	}
	if reg := db.Obs(); reg != nil {
		tr.mPropagated = reg.Counter("core.propagated")
		tr.mIterations = reg.Counter("core.iterations")
		tr.mRunning = reg.Gauge("core.running")
		tr.mBacklog = reg.Gauge("core.backlog")
		tr.mCompactIn = reg.Counter("core.compact.in")
		tr.mCompactOut = reg.Counter("core.compact.out")
		tr.mCompactFenc = reg.Counter("core.compact.fences")
		tr.mLag = reg.Histogram("core.commit_lag")
		tr.mAppliedLSN = reg.Gauge("core.applied_lsn")
		tr.mLagMs = reg.Gauge("core.lag_ms")
		tr.shadow.SetObs(reg)
	}
	tr.setPriority(tr.cfg.Priority)
	return tr
}

// faultHit fires a transformation fault point ("core.<name>"). The points
// are documented on the constants below; a nil or disarmed registry costs
// one nil check and one atomic load.
func (tr *Transformation) faultHit(name string) error {
	return tr.faults.Hit("core." + name)
}

// Phase returns the current lifecycle phase.
func (tr *Transformation) Phase() Phase { return Phase(tr.phase.Load()) }

func (tr *Transformation) setPhase(p Phase) {
	tr.phase.Store(int32(p))
	tr.emit(obs.EventPhase, nil)
}

// Priority returns the current propagation priority in (0, 1].
func (tr *Transformation) Priority() float64 {
	return float64frombits(tr.priority.Load())
}

// SetPriority adjusts the propagation priority while running.
func (tr *Transformation) SetPriority(p float64) {
	if p <= 0 || p > 1 {
		p = 1
	}
	tr.setPriority(p)
}

func (tr *Transformation) setPriority(p float64) {
	tr.priority.Store(float64bits(p))
}

// Abort requests cancellation: propagation stops and the target tables are
// deleted ("Aborting the transformation simply means that log propagation is
// stopped, and that the transformed tables are deleted.", §6).
func (tr *Transformation) Abort() { tr.cancel.Store(true) }

// Metrics returns a copy of the metrics collected so far.
func (tr *Transformation) Metrics() Metrics {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.metrics
}

// Shadow exposes the transferred-lock table (tests, introspection).
func (tr *Transformation) Shadow() *lock.ShadowTable { return tr.shadow }

// Remaining returns the number of unpropagated log records right now.
func (tr *Transformation) Remaining() int {
	tr.mu.Lock()
	cursor := tr.cursor
	tr.mu.Unlock()
	end := tr.db.Log().End()
	if cursor == 0 || cursor > end {
		return 0
	}
	return int(end - cursor + 1)
}

// Run executes the transformation end to end. On error the target tables
// are dropped and the database is left untouched.
func (tr *Transformation) Run(ctx context.Context) error {
	start := time.Now()
	tr.mu.Lock()
	tr.runStart = start
	tr.mu.Unlock()
	tr.mRunning.Add(1)
	defer tr.mRunning.Add(-1)
	defer tr.mBacklog.Set(0)
	defer func() {
		rounds, repairs := tr.op.CCStats()
		tr.mu.Lock()
		tr.metrics.TotalDuration = time.Since(start)
		tr.metrics.CCRounds = rounds
		tr.metrics.CCRepairs = repairs
		tr.mu.Unlock()
	}()

	if err := tr.run(ctx); err != nil {
		tr.setPhase(PhaseAborted)
		tr.db.ClearHooks()
		tr.shadow.SetEnforce(false)
		cerr := tr.op.Cleanup()
		tr.logDone(true)
		tr.emit(obs.EventAbort, func(ev *obs.Event) {
			ev.Err = err.Error()
			ev.Duration = time.Since(start)
		})
		if cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	}
	tr.logDone(false)
	tr.setPhase(PhaseDone)
	tr.emit(obs.EventDone, func(ev *obs.Event) {
		ev.Duration = time.Since(start)
		ev.Rules = tr.RuleApplications()
		ev.Tables = append([]string(nil), tr.op.Targets()...)
	})
	return nil
}

// Fault points fired by a transformation when the database was opened with a
// fault registry. Phase points fire right after the phase becomes visible;
// the finer-grained points mark the seams a crash is most interesting at.
//
//	core.phase.preparing       entering step 1
//	core.phase.populating      entering step 2
//	core.phase.propagating     entering step 3
//	core.phase.synchronizing   entering step 4
//	core.fuzzymark             before appending a fuzzy mark (steps 2 and 3)
//	core.populate.chunk        after each initial-population work chunk
//	core.propagate.batch       at each batch start while redoing log records
//	core.sync.entry            synchronization, before latching the sources
//	core.sync.latched          sources latched, final propagation done
//	core.sync.published        targets published, switchover latches not yet
//	                           released
func (tr *Transformation) run(ctx context.Context) error {
	// Step 1: preparation.
	tr.setPhase(PhasePreparing)
	if err := tr.faultHit("phase.preparing"); err != nil {
		return err
	}
	if err := tr.op.Prepare(); err != nil {
		return fmt.Errorf("core: prepare: %w", err)
	}
	if err := tr.logStart(); err != nil {
		return err
	}
	tr.installHooks()

	// Step 2: initial population.
	tr.setPhase(PhasePopulating)
	if err := tr.faultHit("phase.populating"); err != nil {
		return err
	}
	popStart := time.Now()
	if err := tr.populate(ctx); err != nil {
		return fmt.Errorf("core: populate: %w", err)
	}
	tr.mu.Lock()
	tr.metrics.PopulationDuration = time.Since(popStart)
	cursor := tr.cursor
	tr.mu.Unlock()
	tr.logPopulated(cursor)

	// Step 3: log propagation.
	tr.setPhase(PhasePropagating)
	if err := tr.faultHit("phase.propagating"); err != nil {
		return err
	}
	propStart := time.Now()
	if err := tr.propagateLoop(ctx); err != nil {
		return fmt.Errorf("core: propagate: %w", err)
	}
	tr.mu.Lock()
	tr.metrics.PropagationDuration = time.Since(propStart)
	tr.mu.Unlock()

	// Step 4: synchronization (+ drain for the non-blocking strategies).
	tr.setPhase(PhaseSynchronizing)
	if err := tr.faultHit("phase.synchronizing"); err != nil {
		return err
	}
	if err := tr.synchronize(ctx); err != nil {
		return fmt.Errorf("core: synchronize: %w", err)
	}
	tr.db.ClearHooks()
	tr.shadow.SetEnforce(false)
	return nil
}

// populate writes the begin fuzzy mark, computes the propagation start
// position from the active-transaction table, and builds the initial image.
func (tr *Transformation) populate(ctx context.Context) error {
	if err := tr.faultHit("fuzzymark"); err != nil {
		return err
	}
	active := tr.db.ActiveTxns()
	mark := tr.db.Log().Append(&wal.Record{Type: wal.TypeFuzzyMark, Active: active})
	start := mark
	for _, a := range active {
		if a.First < start {
			start = a.First
		}
	}
	tr.mu.Lock()
	tr.cursor = start
	tr.mu.Unlock()
	// Records below the propagation start position are covered by the fuzzy
	// initial image; freshness lag during population is therefore measured
	// from the population-start cut (see DESIGN.md).
	tr.noteApplied(start - 1)
	tr.emit(obs.EventFuzzyMark, func(ev *obs.Event) { ev.LSN = uint64(mark) })

	// Snapshot-based population: open the read view after the fuzzy mark so
	// any commit the snapshot misses (stamped after its begin) has all its
	// log records at or above the propagation start position — either the
	// transaction was active at the mark (its First bounds start) or it
	// began after the mark. Commits the snapshot does include may be
	// replayed too; the LSN-guarded rules make that a no-op.
	if tr.cfg.SnapshotPopulate {
		snap, err := tr.db.BeginSnapshot()
		switch {
		case errors.Is(err, engine.ErrSnapshotsOff):
			// MVCC disabled on this database: degrade to the fuzzy scan.
		case err != nil:
			return fmt.Errorf("core: population snapshot: %w", err)
		default:
			tr.popSnapOn = true
			tr.popTS = snap.TS()
			defer func() {
				tr.popSnapOn = false
				snap.Close()
			}()
		}
	}

	// The tick callback cannot return an error to the operator, so an
	// injected chunk fault is carried out of the scan in chunkErr and
	// surfaces once Populate returns. A crash action still fires in place,
	// i.e. at the chunk boundary itself. Parallel population calls the
	// callback from several workers, so it is serialized by tickMu — the
	// throttler's duty-cycle accounting then covers the workers' combined
	// work, which is exactly the priority contract.
	th := newThrottler(tr)
	var tickMu sync.Mutex
	var chunkErr error
	chunkAcc := 0
	rows, err := tr.op.Populate(func(n int) {
		tickMu.Lock()
		defer tickMu.Unlock()
		th.tick(n)
		tr.popRows.Add(int64(n))
		chunkAcc += n
		if chunkAcc >= tr.cfg.FuzzyChunk {
			chunkAcc = 0
			tr.emit(obs.EventPopulateChunk, func(ev *obs.Event) {
				ev.Rows = tr.popRows.Load()
			})
		}
		if chunkErr == nil {
			chunkErr = tr.faultHit("populate.chunk")
		}
	})
	if err == nil {
		err = chunkErr
	}
	if err != nil {
		return err
	}
	tr.popRows.Store(rows)
	tr.emit(obs.EventPopulateChunk, func(ev *obs.Event) { ev.Rows = rows })
	tr.mu.Lock()
	tr.metrics.InitialImageRows = rows
	tr.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return errors.Join(ErrAborted, err)
	}
	if tr.cancel.Load() {
		return ErrAborted
	}
	return nil
}

// scanPartition reads one source heap partition for initial population:
// a snapshot scan at the population read view's timestamp when one is
// active (Config.SnapshotPopulate on an MVCC-enabled database), otherwise
// the classic fuzzy scan. Both deliver chunked row copies with no latch
// held across the callback.
func (tr *Transformation) scanPartition(tbl *storage.Table, pi int, fn func(recs []storage.Record)) {
	if tr.popSnapOn {
		tbl.SnapshotScanPartition(pi, tr.popTS, tr.cfg.FuzzyChunk, func(recs []storage.Record) bool {
			fn(recs)
			return true
		})
		return
	}
	tbl.FuzzyScanPartition(pi, tr.cfg.FuzzyChunk, fn)
}

// installHooks wires transferred-lock enforcement and lock mirroring into
// the engine.
func (tr *Transformation) installHooks() {
	targets := make(map[string]bool)
	for _, t := range tr.op.Targets() {
		targets[t] = true
	}
	sources := make(map[string]bool)
	for _, s := range tr.op.Sources() {
		sources[s] = true
	}
	tr.db.SetHooks(engine.Hooks{
		CheckLock: func(txn wal.TxnID, table string, key value.Tuple, mode lock.Mode) error {
			if !tr.shadow.Enforcing() {
				return nil
			}
			switch {
			case targets[table]:
				// Direct access to a transformed table: check against
				// transferred locks under the Fig. 2 matrix.
				return tr.shadow.Check(txn, nsKey(table, key.Encode()), lock.OriginT, mode)
			case sources[table] && tr.cfg.Strategy == NonBlockingCommit:
				// Old transaction working on a source table after
				// synchronization: acquire the corresponding locks in the
				// transformed tables too ("all locks on source tables have
				// to be acquired on the corresponding records in the
				// transformed tables", §3.4).
				origin := tr.originOf(table)
				for _, tk := range tr.op.MirrorKeys(table, key) {
					for holder, hm := range tr.db.Locks().Holders(tk.Table, tk.Key) {
						if holder == txn {
							continue
						}
						if !lock.TransferCompatible(lock.OriginT, hm, origin, mode) {
							return fmt.Errorf("%w: direct lock by txn %d on %s",
								lock.ErrShadowConflict, holder, tk.Table)
						}
					}
					if err := tr.shadow.Check(txn, nsKey(tk.Table, tk.Key), origin, mode); err != nil {
						return err
					}
					tr.shadow.Place(txn, nsKey(tk.Table, tk.Key), origin, mode)
				}
			}
			return nil
		},
	})
}

// originOf maps a source table to its transferred-lock origin: the first
// source is R, any other is S.
func (tr *Transformation) originOf(table string) lock.Origin {
	srcs := tr.op.Sources()
	if len(srcs) > 0 && srcs[0] == table {
		return lock.OriginR
	}
	return lock.OriginS
}

// nsKey namespaces a target-record key by its table for the shadow table.
func nsKey(table, keyEnc string) string { return table + "\x00" + keyEnc }

func float64bits(f float64) uint64 { return math.Float64bits(f) }

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
