package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"nbschema/internal/engine"
)

// Recover idempotency (the paper leaves this implicit; the lifecycle log
// makes it checkable): calling Recover again — after a completed
// transformation, after a previous Recover, or concurrently with normal
// operation — must be a no-op, never a double drop of live targets.

// completedJoin runs a full-outer-join transformation to completion on a
// fresh database and returns the database.
func completedJoin(t *testing.T) *engine.DB {
	t.Helper()
	db := newJoinDB(t)
	seedJoin(t, db)
	tr, err := NewFullOuterJoin(db, JoinSpec{
		Target: "T", Left: "R", Right: "S", On: [][2]string{{"c", "c"}},
	}, Config{KeepSources: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return db
}

func assertRecoverNoop(t *testing.T, rep RecoverReport) {
	t.Helper()
	if rep.Orphaned || len(rep.DroppedTargets) != 0 || len(rep.ReopenedSources) != 0 ||
		rep.Rerun || rep.Resumed || rep.FinishedSwitchover {
		t.Fatalf("Recover was not a no-op: %+v", rep)
	}
}

// TestRecoverIdempotentOnLiveDB names a completed, live target in Targets:
// the logged transform-done record protects it on both calls.
func TestRecoverIdempotentOnLiveDB(t *testing.T) {
	db := completedJoin(t)
	want := db.Table("T").Len()
	if want == 0 {
		t.Fatal("transformation produced an empty target")
	}
	for i := 0; i < 2; i++ {
		rep, err := Recover(context.Background(), db, RecoverConfig{Targets: []string{"T"}})
		if err != nil {
			t.Fatalf("Recover #%d: %v", i+1, err)
		}
		assertRecoverNoop(t, rep)
		if got := db.Table("T"); got == nil || got.Len() != want {
			t.Fatalf("Recover #%d dropped or shrank the live target", i+1)
		}
	}
}

// TestRecoverIdempotentAfterCheckpointRestart restores a checkpoint taken
// after the transformation completed: the done record is covered, so the
// target survives repeated Recover calls. The same log restarted WITHOUT the
// checkpoint must drop the target — protection is precise, not blanket.
func TestRecoverIdempotentAfterCheckpointRestart(t *testing.T) {
	db := completedJoin(t)
	var snap bytes.Buffer
	if _, err := db.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := db.Log().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	defs := harvestDefs(t, db)
	opts := engine.Options{LockTimeout: 150 * time.Millisecond}

	db2, _, err := engine.RestartFromSnapshot(defs, strings.NewReader(dump), bytes.NewReader(snap.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if db2.RestoredCheckpoint() == nil {
		t.Fatal("checkpoint not restored")
	}
	want := db.Table("T").Len()
	for i := 0; i < 2; i++ {
		rep, err := Recover(context.Background(), db2, RecoverConfig{Targets: []string{"T"}})
		if err != nil {
			t.Fatalf("Recover #%d: %v", i+1, err)
		}
		assertRecoverNoop(t, rep)
		if got := db2.Table("T"); got == nil || got.Len() != want {
			t.Fatalf("Recover #%d dropped the checkpoint-restored target", i+1)
		}
	}

	// Control: a full-replay restart cannot trust the target (population is
	// not logged), so the same Recover call must drop it.
	db3, _, err := engine.RestartFrom(defs, strings.NewReader(dump), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(context.Background(), db3, RecoverConfig{Targets: []string{"T"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DroppedTargets) != 1 || rep.DroppedTargets[0] != "T" {
		t.Fatalf("full-replay restart did not drop the untrusted target: %+v", rep)
	}
	// And a second call after the drop is again a no-op, not an error.
	rep2, err := Recover(context.Background(), db3, RecoverConfig{Targets: []string{"T"}})
	if err != nil {
		t.Fatal(err)
	}
	assertRecoverNoop(t, rep2)
}

// TestRecoverIdempotentAfterResume: once a resumed transformation logs its
// done record, further Recover calls leave its targets alone.
func TestRecoverIdempotentAfterResume(t *testing.T) {
	tc := fojTortureCase()
	db2 := resumedDatabase(t, tc)
	want := db2.Table("T").Len()
	if want == 0 {
		t.Fatal("resumed transformation left an empty target")
	}
	for i := 0; i < 2; i++ {
		rep, err := Recover(context.Background(), db2, RecoverConfig{Targets: tc.targets})
		if err != nil {
			t.Fatalf("Recover #%d after resume: %v", i+1, err)
		}
		assertRecoverNoop(t, rep)
		if got := db2.Table("T"); got == nil || got.Len() != want {
			t.Fatalf("Recover #%d after resume dropped the target", i+1)
		}
	}
}
