package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nbschema/internal/catalog"
	"nbschema/internal/engine"
	"nbschema/internal/value"
	"nbschema/internal/wal"
)

// The running example mirrors Example 1 / Figure 3: a customer table
// T(id, name, zip, city) split on zip into R(id, name, zip) and S(zip, city).

func newSplitDB(t *testing.T) *engine.DB {
	return newSplitDBOpts(t, engine.Options{LockTimeout: 150 * time.Millisecond})
}

func newSplitDBOpts(t *testing.T, o engine.Options) *engine.DB {
	t.Helper()
	db := engine.New(o)
	def, err := catalog.NewTableDef("T", []catalog.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "name", Type: value.KindString, Nullable: true},
		{Name: "zip", Type: value.KindInt},
		{Name: "city", Type: value.KindString, Nullable: true},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	return db
}

func tRow(id int64, name string, zip int64, city string) value.Tuple {
	return value.Tuple{value.Int(id), value.Str(name), value.Int(zip), value.Str(city)}
}

func seedSplit(t *testing.T, db *engine.DB) {
	t.Helper()
	mustExec(t, db, func(tx *engine.Txn) error {
		rows := []value.Tuple{
			tRow(1, "peter", 7050, "trondheim"),
			tRow(2, "mark", 5020, "bergen"),
			tRow(3, "gary", 50, "oslo"),
			tRow(4, "jen", 7050, "trondheim"),
		}
		for _, r := range rows {
			if err := tx.Insert("T", r); err != nil {
				return err
			}
		}
		return nil
	})
}

func splitSpec() SplitSpec {
	return SplitSpec{
		Source: "T", Left: "R", Right: "S",
		SplitOn: []string{"zip"}, RightOnly: []string{"city"},
	}
}

func newSplitOp(t *testing.T, db *engine.DB, cfg Config) (*Transformation, *splitOp) {
	t.Helper()
	tr, err := NewSplit(db, splitSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.op.(*splitOp)
}

func preparedSplit(t *testing.T, db *engine.DB, cfg Config) (*Transformation, *splitOp) {
	t.Helper()
	tr, op := newSplitOp(t, db, cfg)
	if err := op.Prepare(); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	tr.cursor = db.Log().End() + 1
	tr.mu.Unlock()
	if _, err := op.Populate(func(int) {}); err != nil {
		t.Fatal(err)
	}
	return tr, op
}

// assertSplitConverged checks R = π_R(T), S = π_S(T) with correct counters.
func assertSplitConverged(t *testing.T, op *splitOp) {
	t.Helper()
	src := op.db.Table(op.spec.Source)
	wantR := make(map[string]value.Tuple)
	wantS := make(map[string]value.Tuple) // payload only
	wantCnt := make(map[string]int64)
	src.Scan(func(row value.Tuple, _ wal.LSN) bool {
		r := op.rPart(row.Clone())
		wantR[r.Project(op.rDef.PrimaryKey).Encode()] = r
		p := op.sPayload(row.Clone())
		k := p.Project(rangeInts(len(op.splitT))).Encode()
		wantS[k] = p
		wantCnt[k]++
		return true
	})

	gotR := op.rTbl.Rows()
	if len(gotR) != len(wantR) {
		t.Errorf("R has %d rows, want %d", len(gotR), len(wantR))
	}
	for k, w := range wantR {
		g, ok := gotR[k]
		if !ok {
			t.Errorf("R missing %v", w)
			continue
		}
		if !g.Equal(w) {
			t.Errorf("R row mismatch: got %v want %v", g, w)
		}
	}
	for k, g := range gotR {
		if _, ok := wantR[k]; !ok {
			t.Errorf("R spurious row %v", g)
		}
	}

	gotS := op.sTbl.Rows()
	if len(gotS) != len(wantS) {
		t.Errorf("S has %d rows, want %d", len(gotS), len(wantS))
	}
	for k, w := range wantS {
		g, ok := gotS[k]
		if !ok {
			t.Errorf("S missing %v", w)
			continue
		}
		if !value.Tuple(g[:len(op.sFromT)]).Equal(w) {
			t.Errorf("S payload mismatch: got %v want %v", g[:len(op.sFromT)], w)
		}
		if g[op.cntPos].AsInt() != wantCnt[k] {
			t.Errorf("S counter for %v = %d, want %d", w, g[op.cntPos].AsInt(), wantCnt[k])
		}
	}
	for k, g := range gotS {
		if _, ok := wantS[k]; !ok {
			t.Errorf("S spurious row %v", g)
		}
	}
}

func TestFigure3Example(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := preparedSplit(t, db, Config{})
	propagateAll(t, tr)
	if op.rTbl.Len() != 4 {
		t.Errorf("R has %d rows, want 4", op.rTbl.Len())
	}
	if op.sTbl.Len() != 3 {
		t.Errorf("S has %d rows, want 3 distinct zips", op.sTbl.Len())
	}
	assertSplitConverged(t, op)
	// Two customers share zip 7050: counter must be 2.
	s, _, err := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if err != nil || s[op.cntPos].AsInt() != 2 {
		t.Errorf("s7050 = %v, %v", s, err)
	}
}

func TestRule8Insert(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := preparedSplit(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// New zip → new S record; shared zip → counter bump.
		if err := tx.Insert("T", tRow(5, "ann", 9000, "tromso")); err != nil {
			return err
		}
		return tx.Insert("T", tRow(6, "bo", 7050, "trondheim"))
	})
	propagateAll(t, tr)
	assertSplitConverged(t, op)
	s, _, _ := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if s[op.cntPos].AsInt() != 3 {
		t.Errorf("counter = %d, want 3", s[op.cntPos].AsInt())
	}
	// Idempotence: replaying the whole log must not double-count.
	if _, _, err := tr.propagateRange(1, db.Log().End(), nil); err != nil {
		t.Fatal(err)
	}
	assertSplitConverged(t, op)
}

func TestRule9Delete(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := preparedSplit(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		// Deleting one of two 7050 customers decrements; deleting the lone
		// 5020 customer removes s5020 entirely.
		if err := tx.Delete("T", value.Tuple{value.Int(1)}); err != nil {
			return err
		}
		return tx.Delete("T", value.Tuple{value.Int(2)})
	})
	propagateAll(t, tr)
	assertSplitConverged(t, op)
	if _, _, err := op.sTbl.Get(value.Tuple{value.Int(5020)}); err == nil {
		t.Error("s5020 should be removed at counter 0")
	}
	s, _, _ := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if s[op.cntPos].AsInt() != 1 {
		t.Errorf("counter = %d, want 1", s[op.cntPos].AsInt())
	}
}

func TestRule10UpdateRPart(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := preparedSplit(t, db, Config{})
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(1)}, []string{"name"}, value.Tuple{value.Str("petra")})
	})
	propagateAll(t, tr)
	assertSplitConverged(t, op)
	r, lsn, err := op.rTbl.Get(value.Tuple{value.Int(1)})
	if err != nil || r[op.tToR[1]].AsString() != "petra" {
		t.Errorf("r1 = %v, %v", r, err)
	}
	if lsn == 0 {
		t.Error("R LSN must advance")
	}
}

func TestRule11UpdateSPartNonSplit(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := preparedSplit(t, db, Config{})
	// Update the city of the lone 50 zip (counter 1).
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(3)}, []string{"city"}, value.Tuple{value.Str("OSLO")})
	})
	propagateAll(t, tr)
	assertSplitConverged(t, op)
	s, _, _ := op.sTbl.Get(value.Tuple{value.Int(50)})
	if s[1].AsString() != "OSLO" {
		t.Errorf("s50 = %v", s)
	}
}

func TestRule11UpdateSplitAttribute(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := preparedSplit(t, db, Config{})
	// Move customer 1 from 7050 to 5020: 7050 drops to 1, 5020 rises to 2.
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(1)}, []string{"zip", "city"},
			value.Tuple{value.Int(5020), value.Str("bergen")})
	})
	propagateAll(t, tr)
	assertSplitConverged(t, op)
	s7050, _, _ := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if s7050[op.cntPos].AsInt() != 1 {
		t.Errorf("7050 counter = %d", s7050[op.cntPos].AsInt())
	}
	s5020, _, _ := op.sTbl.Get(value.Tuple{value.Int(5020)})
	if s5020[op.cntPos].AsInt() != 2 {
		t.Errorf("5020 counter = %d", s5020[op.cntPos].AsInt())
	}

	// Move customer 3 (lone zip 50) to a brand new zip: s50 vanishes, the
	// new S record inherits the extracted city.
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(3)}, []string{"zip"}, value.Tuple{value.Int(51)})
	})
	propagateAll(t, tr)
	assertSplitConverged(t, op)
	if _, _, err := op.sTbl.Get(value.Tuple{value.Int(50)}); err == nil {
		t.Error("s50 should be gone")
	}
	s51, _, _ := op.sTbl.Get(value.Tuple{value.Int(51)})
	if s51[1].AsString() != "oslo" {
		t.Errorf("s51 inherited city = %v", s51)
	}
}

func TestSplitAbortedTxnViaCLRs(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := preparedSplit(t, db, Config{})
	tx := db.Begin()
	if err := tx.Insert("T", tRow(9, "ghost", 7050, "trondheim")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("T", value.Tuple{value.Int(2)}, []string{"zip", "city"},
		value.Tuple{value.Int(9999), value.Str("nowhere")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	propagateAll(t, tr)
	assertSplitConverged(t, op)
}

func TestSplitSpecValidation(t *testing.T) {
	db := newSplitDB(t)
	cases := []struct {
		name string
		spec SplitSpec
	}{
		{"empty left", SplitSpec{Source: "T", Right: "S", SplitOn: []string{"zip"}}},
		{"no split attrs", SplitSpec{Source: "T", Left: "R", Right: "S"}},
		{"missing source", SplitSpec{Source: "ghost", Left: "R", Right: "S", SplitOn: []string{"zip"}}},
		{"bad split col", SplitSpec{Source: "T", Left: "R", Right: "S", SplitOn: []string{"zz"}}},
		{"bad moved col", SplitSpec{Source: "T", Left: "R", Right: "S", SplitOn: []string{"zip"}, RightOnly: []string{"zz"}}},
		{"split col moved", SplitSpec{Source: "T", Left: "R", Right: "S", SplitOn: []string{"zip"}, RightOnly: []string{"zip"}}},
		{"pk moved", SplitSpec{Source: "T", Left: "R", Right: "S", SplitOn: []string{"zip"}, RightOnly: []string{"id"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewSplit(db, c.spec, Config{}); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestSplitEndToEnd(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, op := newSplitOp(t, db, Config{KeepSources: true})
	if err := tr.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertSplitConverged(t, op)
	for _, name := range []string{"R", "S"} {
		def, err := db.Catalog().Get(name)
		if err != nil || def.State != catalog.StatePublic {
			t.Errorf("%s state = %v, %v", name, def, err)
		}
	}
}

// chaosSplitWorkload mutates T randomly.
func chaosSplitWorkload(t *testing.T, db *engine.DB, seed int64, pace time.Duration, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(seed))
	zips := []int64{50, 5020, 7050, 9000, 1234}
	cityOf := func(zip int64) string { return names[zip%int64(len(names))] }
	for {
		select {
		case <-stop:
			return
		default:
		}
		if pace > 0 {
			time.Sleep(pace + time.Duration(rng.Intn(int(pace))))
		}
		tx := db.Begin()
		var err error
		for i := 0; i < 1+rng.Intn(3) && err == nil; i++ {
			id := rng.Int63n(300)
			zip := zips[rng.Intn(len(zips))]
			switch rng.Intn(6) {
			case 0, 1:
				err = tx.Insert("T", tRow(id, randName(rng), zip, cityOf(zip)))
			case 2:
				err = tx.Delete("T", value.Tuple{value.Int(id)})
			case 3:
				err = tx.Update("T", value.Tuple{value.Int(id)}, []string{"name"},
					value.Tuple{value.Str(randName(rng))})
			case 4, 5:
				// Move between zips, keeping city functionally dependent so
				// the consistent-data assumption holds.
				err = tx.Update("T", value.Tuple{value.Int(id)}, []string{"zip", "city"},
					value.Tuple{value.Int(zip), value.Str(cityOf(zip))})
			}
		}
		if err != nil || rng.Intn(8) == 0 {
			if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, engine.ErrTxnDone) {
				t.Errorf("abort: %v", aerr)
				return
			}
			continue
		}
		if cerr := tx.Commit(); cerr != nil && !errors.Is(cerr, engine.ErrTxnDoomed) && !errors.Is(cerr, engine.ErrTxnDone) {
			t.Errorf("commit: %v", cerr)
			return
		} else if errors.Is(cerr, engine.ErrTxnDoomed) {
			if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, engine.ErrTxnDone) {
				t.Errorf("abort doomed: %v", aerr)
				return
			}
		}
	}
}

func TestSplitConvergenceUnderConcurrentLoad(t *testing.T) {
	for _, strategy := range []SyncStrategy{NonBlockingAbort, NonBlockingCommit, BlockingCommit} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			db := newSplitDB(t)
			mustExec(t, db, func(tx *engine.Txn) error {
				for i := int64(0); i < 120; i++ {
					zip := []int64{50, 5020, 7050}[i%3]
					if err := tx.Insert("T", tRow(i, "init", zip, names[zip%int64(len(names))])); err != nil {
						return err
					}
				}
				return nil
			})
			tr, op := newSplitOp(t, db, Config{
				Strategy:      strategy,
				KeepSources:   true,
				Analyzer:      CountAnalyzer(16),
				MaxIterations: 500,
			})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go chaosSplitWorkload(t, db, int64(w)+int64(strategy)*10, 150*time.Microsecond, stop, &wg)
			}
			time.Sleep(20 * time.Millisecond)
			err := tr.Run(context.Background())
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			assertSplitConverged(t, op)
			if tr.Shadow().LockedKeys() != 0 {
				t.Errorf("shadow locks leaked: %d", tr.Shadow().LockedKeys())
			}
		})
	}
}
