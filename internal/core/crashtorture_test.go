package core

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"nbschema/internal/catalog"
	"nbschema/internal/engine"
	"nbschema/internal/fault"
	"nbschema/internal/value"
	"nbschema/internal/wal"
)

// Crash torture: run a live transformation under a closed-loop workload,
// crash it at an injected fault point (the crash is a panic caught at the
// process-simulation boundary), restart from the serialized WAL — with a
// torn tail appended, as a real crash mid-append would leave — and assert
// the paper's recovery invariant (§6): sources intact and equal to a
// never-transformed database, losers rolled back, targets absent after
// core.Recover, and a re-run of the transformation converging.
//
// Crash points must only fire on the transformation's goroutine, i.e.
// core.* points or storage points qualified by a hidden target table.
// Specs that crash inside the synchronization latch window run quiesced
// (no workload): an in-process "crash" never releases held latches, so a
// live workload would block forever against them.

type crashSpec struct {
	name  string
	point string
	hit   int64
	load  bool
}

// tortureCase abstracts over the FOJ and split transformations.
type tortureCase struct {
	sources    []string
	targets    []string
	newDB      func(t *testing.T, o engine.Options) *engine.DB
	seed       func(t *testing.T, db *engine.DB)
	buildWith  func(db *engine.DB, cfg Config) (*Transformation, error)
	loadOp     func(tx *engine.Txn, rng *rand.Rand, i int) error
	sourceDefs func(t *testing.T) []*catalog.TableDef
	converged  func(t *testing.T, tr *Transformation)
	// si runs the whole scenario with MVCC snapshot reads enabled — crashing
	// process, restarted process, and control alike — with snapshot-based
	// initial population and lock-free snapshot readers racing the crash.
	si bool
}

// engineOpts are the crashing process's engine options for this case.
func (tc tortureCase) engineOpts(reg *fault.Registry) engine.Options {
	return engine.Options{LockTimeout: 150 * time.Millisecond, Faults: reg, SnapshotReads: tc.si}
}

func tortureConfig() Config {
	return Config{
		KeepSources:      true,
		BatchSize:        4,
		FuzzyChunk:       2,
		SyncLatchTimeout: 20 * time.Millisecond,
	}
}

func fojTortureCase() tortureCase {
	return tortureCase{
		sources: []string{"R", "S"},
		targets: []string{"T"},
		newDB: func(t *testing.T, o engine.Options) *engine.DB {
			db := engine.New(o)
			for _, def := range joinDefs(t) {
				if err := db.CreateTable(def); err != nil {
					t.Fatal(err)
				}
			}
			return db
		},
		seed: func(t *testing.T, db *engine.DB) {
			mustExec(t, db, func(tx *engine.Txn) error {
				for i := int64(0); i < 40; i++ {
					if err := tx.Insert("R", rRow(i, "seed", i%7)); err != nil {
						return err
					}
				}
				for i := int64(0); i < 7; i++ {
					if err := tx.Insert("S", sRowV(i, "city")); err != nil {
						return err
					}
				}
				return nil
			})
		},
		buildWith: func(db *engine.DB, cfg Config) (*Transformation, error) {
			return NewFullOuterJoin(db, JoinSpec{
				Target: "T", Left: "R", Right: "S", On: [][2]string{{"c", "c"}},
			}, cfg)
		},
		loadOp: func(tx *engine.Txn, rng *rand.Rand, i int) error {
			switch rng.Intn(4) {
			case 0:
				return tx.Insert("R", rRow(1000+int64(i)*7+rng.Int63n(7), "live", rng.Int63n(7)))
			case 1:
				return tx.Update("R", value.Tuple{value.Int(rng.Int63n(40))},
					[]string{"b"}, value.Tuple{value.Str("upd")})
			case 2:
				return tx.Update("S", value.Tuple{value.Int(rng.Int63n(7))},
					[]string{"d"}, value.Tuple{value.Str("town")})
			default:
				return tx.Delete("R", value.Tuple{value.Int(rng.Int63n(40))})
			}
		},
		sourceDefs: joinDefs,
		converged: func(t *testing.T, tr *Transformation) {
			assertConverged(t, tr.op.(*fojOp))
		},
	}
}

func splitTortureDefs(t *testing.T) []*catalog.TableDef {
	t.Helper()
	def, err := catalog.NewTableDef("T", []catalog.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "name", Type: value.KindString, Nullable: true},
		{Name: "zip", Type: value.KindInt},
		{Name: "city", Type: value.KindString, Nullable: true},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return []*catalog.TableDef{def}
}

func splitTortureCase() tortureCase {
	return tortureCase{
		sources: []string{"T"},
		targets: []string{"R", "S"},
		newDB: func(t *testing.T, o engine.Options) *engine.DB {
			db := engine.New(o)
			for _, def := range splitTortureDefs(t) {
				if err := db.CreateTable(def); err != nil {
					t.Fatal(err)
				}
			}
			return db
		},
		seed: func(t *testing.T, db *engine.DB) {
			mustExec(t, db, func(tx *engine.Txn) error {
				for i := int64(0); i < 40; i++ {
					if err := tx.Insert("T", tRow(i, "seed", 7000+i%5, "city")); err != nil {
						return err
					}
				}
				return nil
			})
		},
		buildWith: func(db *engine.DB, cfg Config) (*Transformation, error) {
			return NewSplit(db, splitSpec(), cfg)
		},
		loadOp: func(tx *engine.Txn, rng *rand.Rand, i int) error {
			switch rng.Intn(4) {
			case 0:
				return tx.Insert("T", tRow(1000+int64(i)*7+rng.Int63n(7), "live", 7000+rng.Int63n(5), "city"))
			case 1:
				return tx.Update("T", value.Tuple{value.Int(rng.Int63n(40))},
					[]string{"name"}, value.Tuple{value.Str("upd")})
			case 2:
				return tx.Update("T", value.Tuple{value.Int(rng.Int63n(40))},
					[]string{"zip", "city"}, value.Tuple{value.Int(7000 + rng.Int63n(5)), value.Str("city")})
			default:
				return tx.Delete("T", value.Tuple{value.Int(rng.Int63n(40))})
			}
		},
		sourceDefs: splitTortureDefs,
		converged: func(t *testing.T, tr *Transformation) {
			assertSplitConverged(t, tr.op.(*splitOp))
		},
	}
}

// startLoad runs a small closed-loop workload until stop is closed. Errors
// (lock timeouts, doomed transactions, tables switched away mid-run) abort
// the transaction and continue — a real client's retry loop.
func startLoad(db *engine.DB, op func(tx *engine.Txn, rng *rand.Rand, i int) error, seed int64) (stop func(), wait func(time.Duration) bool) {
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				tx := db.Begin()
				if err := op(tx, rng, i); err != nil {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
				// Pace the load so propagation can catch up and the
				// analyzer actually reaches synchronization.
				time.Sleep(50 * time.Microsecond)
			}
		}(seed + int64(w))
	}
	done := make(chan struct{})
	var once sync.Once
	return func() { close(stopCh) }, func(d time.Duration) bool {
		once.Do(func() {
			go func() { wg.Wait(); close(done) }()
		})
		select {
		case <-done:
			return true
		case <-time.After(d):
			return false
		}
	}
}

// startSnapshotLoad runs two lock-free snapshot readers over the source
// tables until stop is called. They never hold locks, so unlike the update
// load they cannot deadlock against the transformation — but a reader caught
// behind a latch the crashed process still holds may wedge, so stop does not
// wait for them (mirroring the update load's crash-held-latch escape hatch).
func startSnapshotLoad(db *engine.DB, sources []string) (stop func()) {
	stopCh := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func() {
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				snap, err := db.BeginSnapshot()
				if err != nil {
					return
				}
				for _, src := range sources {
					n := 0
					_ = snap.Scan(src, func(value.Tuple) bool {
						n++
						return n < 16
					})
				}
				_ = snap.Close()
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	return func() { close(stopCh) }
}

// tornSuffix returns the first half of one serialized WAL frame — the bytes
// a crash mid-append leaves at the end of the file.
func tornSuffix(t *testing.T) string {
	t.Helper()
	l := wal.NewLog()
	l.Append(&wal.Record{Type: wal.TypeFuzzyMark})
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	return s[:len(s)/2]
}

// harvestDefs clones every table definition in the catalog, preserving
// lifecycle states — the schema a restarted process would reload.
func harvestDefs(t *testing.T, db *engine.DB) []*catalog.TableDef {
	t.Helper()
	var defs []*catalog.TableDef
	for _, name := range db.Catalog().List() {
		def, err := db.Catalog().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		defs = append(defs, def.Clone())
	}
	return defs
}

// runCrashTorture is the process-simulation harness for one seeded crash.
func runCrashTorture(t *testing.T, tc tortureCase, spec crashSpec) {
	reg := fault.New()
	db := tc.newDB(t, tc.engineOpts(reg))
	tc.seed(t, db)

	cfg := tortureConfig()
	cfg.SnapshotPopulate = tc.si
	tr, err := tc.buildWith(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var stop func()
	var wait func(time.Duration) bool
	if spec.load {
		stop, wait = startLoad(db, tc.loadOp, 0x5eed)
		// Let the workload open transactions and append log records so the
		// transformation starts with real concurrent traffic.
		time.Sleep(5 * time.Millisecond)
	}
	var stopSnap func()
	if tc.si && spec.load {
		stopSnap = startSnapshotLoad(db, tc.sources)
	}

	reg.Arm(spec.point, fault.OnHit(spec.hit), fault.CrashAction())

	// Process-simulation boundary: the transformation goroutine "is" the
	// crashing process; the injected panic is caught here and nowhere else.
	type outcome struct {
		c   fault.Crash
		err error
	}
	crashed := make(chan outcome, 1)
	go func() {
		var runErr error
		defer func() {
			if r := recover(); r != nil {
				c, ok := fault.AsCrash(r)
				if !ok {
					panic(r)
				}
				crashed <- outcome{c: c}
				return
			}
			crashed <- outcome{err: runErr}
		}()
		runErr = tr.Run(context.Background())
	}()

	var o outcome
	select {
	case o = <-crashed:
	case <-time.After(30 * time.Second):
		t.Fatalf("crash point %s (hit %d) never fired", spec.point, spec.hit)
	}
	if o.c.Point != spec.point {
		t.Fatalf("crashed at %q, armed %q (run error: %v)", o.c.Point, spec.point, o.err)
	}

	if spec.load {
		stop()
		if !wait(5 * time.Second) {
			// A goroutine is wedged on a latch the dead transformation still
			// holds; it can no longer write, so harvesting is safe.
			t.Logf("workload left blocked behind crash-held latches")
		}
	}
	if stopSnap != nil {
		stopSnap()
	}
	reg.Reset()

	// The surviving state of the crashed process is its WAL. Serialize it
	// and append a torn half-frame, as a crash mid-append would.
	var buf strings.Builder
	if _, err := db.Log().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()

	// Restart with the full schema (sources + orphaned targets), lenient.
	opts := engine.Options{LockTimeout: 150 * time.Millisecond, LenientWAL: true, SnapshotReads: tc.si}
	db2, cut, err := engine.RestartFrom(harvestDefs(t, db), strings.NewReader(dump+tornSuffix(t)), opts)
	if err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	if cut == nil || !cut.Torn() {
		t.Fatalf("lenient restart did not report the torn tail: %+v", cut)
	}
	if n := db2.ActiveCount(); n != 0 {
		t.Fatalf("%d loser transactions still active after restart", n)
	}

	// Recover drops the orphaned targets and reverts half-switched sources.
	rep, err := Recover(context.Background(), db2, RecoverConfig{Targets: tc.targets})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.Orphaned {
		t.Fatal("Recover did not detect the orphaned transformation")
	}
	for _, tgt := range tc.targets {
		if db2.Table(tgt) != nil {
			t.Fatalf("target %s still present after Recover", tgt)
		}
	}
	for _, src := range tc.sources {
		def, err := db2.Catalog().Get(src)
		if err != nil {
			t.Fatalf("source %s lost: %v", src, err)
		}
		if def.State != catalog.StatePublic {
			t.Fatalf("source %s not public after Recover: state %v", src, def.State)
		}
	}

	// A never-transformed control: restart the same log into the source
	// schema only. The recovered sources must match it exactly.
	db3, _, err := engine.RestartFrom(tc.sourceDefs(t), strings.NewReader(dump), opts)
	if err != nil {
		t.Fatalf("control restart: %v", err)
	}
	for _, src := range tc.sources {
		got := db2.Table(src).Rows()
		want := db3.Table(src).Rows()
		if len(got) != len(want) {
			t.Fatalf("source %s: %d rows after recovery, control has %d", src, len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok || !g.Equal(w) {
				t.Fatalf("source %s row %q diverged: got %v want %v", src, k, g, w)
			}
		}
	}

	// Re-running the transformation on the recovered database converges.
	tr2, err := tc.buildWith(db2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Run(context.Background()); err != nil {
		t.Fatalf("re-run after recovery: %v", err)
	}
	tc.converged(t, tr2)
}

func fojCrashSpecs() []crashSpec {
	return []crashSpec{
		{"populate-phase-entry", "core.phase.populating", 1, true},
		{"populate-chunk-1", "core.populate.chunk", 1, true},
		{"populate-chunk-2", "core.populate.chunk", 2, true},
		{"populate-chunk-9", "core.populate.chunk", 9, true},
		{"populate-fuzzymark", "core.fuzzymark", 1, true},
		{"populate-target-insert-1", "storage.insert.T", 1, true},
		{"populate-target-insert-5", "storage.insert.T", 5, true},
		{"populate-wal-append", "wal.append", 1, false},
		{"propagate-phase-entry", "core.phase.propagating", 1, true},
		{"propagate-batch", "core.propagate.batch", 1, true},
		{"propagate-fuzzymark", "core.fuzzymark", 2, true},
		{"sync-phase-entry", "core.phase.synchronizing", 1, true},
		{"sync-entry", "core.sync.entry", 1, true},
		{"sync-latched", "core.sync.latched", 1, false},
		{"sync-published", "core.sync.published", 1, false},
	}
}

func splitCrashSpecs() []crashSpec {
	return []crashSpec{
		{"populate-chunk-1", "core.populate.chunk", 1, true},
		{"populate-chunk-4", "core.populate.chunk", 4, true},
		{"populate-fuzzymark", "core.fuzzymark", 1, true},
		{"populate-target-insert", "storage.insert.R", 1, true},
		{"propagate-batch", "core.propagate.batch", 1, true},
		{"sync-phase-entry", "core.phase.synchronizing", 1, true},
		{"sync-entry", "core.sync.entry", 1, true},
		{"sync-latched", "core.sync.latched", 1, false},
		{"sync-published", "core.sync.published", 1, false},
	}
}

// reduceSpecs keeps one spec per crash point in -short mode: the dedicated
// race CI job re-runs the torture under the race detector, where the full
// matrix is needlessly slow and crash-point coverage is what matters.
func reduceSpecs(specs []crashSpec) []crashSpec {
	if !testing.Short() {
		return specs
	}
	seen := map[string]bool{}
	var out []crashSpec
	for _, s := range specs {
		if seen[s.point] {
			continue
		}
		seen[s.point] = true
		out = append(out, s)
	}
	return out
}

func TestCrashTortureFOJ(t *testing.T) {
	for _, spec := range reduceSpecs(fojCrashSpecs()) {
		t.Run(spec.name, func(t *testing.T) {
			runCrashTorture(t, fojTortureCase(), spec)
		})
	}
}

func TestCrashTortureSplit(t *testing.T) {
	for _, spec := range reduceSpecs(splitCrashSpecs()) {
		t.Run(spec.name, func(t *testing.T) {
			runCrashTorture(t, splitTortureCase(), spec)
		})
	}
}

// The SI arms run the same crash matrix with MVCC snapshot reads enabled end
// to end: snapshot-based initial population, snapshot readers racing the
// crash, and first-committer-wins conflicts in the load — recovery must hold
// with version chains in play exactly as it does under plain 2PL.
func TestCrashTortureFOJSI(t *testing.T) {
	tc := fojTortureCase()
	tc.si = true
	for _, spec := range reduceSpecs(fojCrashSpecs()) {
		t.Run(spec.name, func(t *testing.T) {
			runCrashTorture(t, tc, spec)
		})
	}
}

func TestCrashTortureSplitSI(t *testing.T) {
	tc := splitTortureCase()
	tc.si = true
	for _, spec := range reduceSpecs(splitCrashSpecs()) {
		t.Run(spec.name, func(t *testing.T) {
			runCrashTorture(t, tc, spec)
		})
	}
}

// TestRecoverCleanDatabase checks Recover is a no-op when nothing crashed.
func TestRecoverCleanDatabase(t *testing.T) {
	db := newJoinDB(t)
	seedJoin(t, db)
	rep, err := Recover(context.Background(), db, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphaned || len(rep.DroppedTargets) != 0 || len(rep.ReopenedSources) != 0 || rep.Rerun {
		t.Fatalf("clean database produced non-empty report: %+v", rep)
	}
}

// TestRecoverReopensDroppingSource checks the half-switched-source path:
// a source caught in the dropping state is reverted to public use.
func TestRecoverReopensDroppingSource(t *testing.T) {
	db := newJoinDB(t)
	seedJoin(t, db)
	hidden, err := catalog.NewTableDef("T_new", []catalog.Column{
		{Name: "a", Type: value.KindInt},
	}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	hidden.State = catalog.StateHidden
	if err := db.CreateTable(hidden); err != nil {
		t.Fatal(err)
	}
	if err := db.MarkDropping("R", db.Log().End()); err != nil {
		t.Fatal(err)
	}

	rep, err := Recover(context.Background(), db, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Orphaned {
		t.Fatal("orphaned state not detected")
	}
	if len(rep.DroppedTargets) != 1 || rep.DroppedTargets[0] != "T_new" {
		t.Errorf("DroppedTargets = %v", rep.DroppedTargets)
	}
	if len(rep.ReopenedSources) != 1 || rep.ReopenedSources[0] != "R" {
		t.Errorf("ReopenedSources = %v", rep.ReopenedSources)
	}
	def, err := db.Catalog().Get("R")
	if err != nil || def.State != catalog.StatePublic {
		t.Errorf("R not public after Recover: %v, %v", def, err)
	}
	// R accepts writes again.
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Insert("R", rRow(99, "back", 1))
	})
}

// TestRecoverRerun checks the optional re-run path end to end.
func TestRecoverRerun(t *testing.T) {
	db := newJoinDB(t)
	seedJoin(t, db)
	// Leave half-prepared targets behind, as a crash would.
	tr, _ := prepared(t, db, Config{})
	_ = tr

	rep, err := Recover(context.Background(), db, RecoverConfig{
		Targets: []string{"T"},
		Rerun: func(db *engine.DB) (*Transformation, error) {
			return NewFullOuterJoin(db, JoinSpec{
				Target: "T", Left: "R", Right: "S", On: [][2]string{{"c", "c"}},
			}, Config{KeepSources: true})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rerun || rep.Transformation == nil {
		t.Fatalf("re-run did not happen: %+v", rep)
	}
	assertConverged(t, rep.Transformation.op.(*fojOp))
}
