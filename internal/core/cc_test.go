package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"nbschema/internal/engine"
	"nbschema/internal/value"
)

// seedInconsistent loads the paper's Example 1: customers 1 and 4 share
// postal code 7050 but disagree on the city ("Trnodheim" typo).
func seedInconsistent(t *testing.T, db *engine.DB) {
	t.Helper()
	mustExec(t, db, func(tx *engine.Txn) error {
		rows := []value.Tuple{
			tRow(1, "peter", 7050, "trondheim"),
			tRow(2, "mark", 5020, "bergen"),
			tRow(3, "gary", 50, "oslo"),
			tRow(4, "jen", 7050, "trnodheim"), // the Example 1 typo
		}
		for _, r := range rows {
			if err := tx.Insert("T", r); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestCCFlagsUnknownOnDisagreeingPopulate(t *testing.T) {
	db := newSplitDB(t)
	seedInconsistent(t, db)
	_, op := preparedSplit(t, db, Config{CheckConsistency: true})
	s, _, err := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if err != nil {
		t.Fatal(err)
	}
	if s[op.flagPos].AsBool() {
		t.Error("disagreeing s7050 should be flagged Unknown")
	}
	// The agreeing records stay Consistent.
	s, _, _ = op.sTbl.Get(value.Tuple{value.Int(5020)})
	if !s[op.flagPos].AsBool() {
		t.Error("s5020 should be flagged Consistent")
	}
	if op.ReadyToSync() {
		t.Error("must not be ready to sync with Unknown records")
	}
}

func TestCCRepairsAfterUserFix(t *testing.T) {
	db := newSplitDB(t)
	seedInconsistent(t, db)
	tr, op := preparedSplit(t, db, Config{CheckConsistency: true})
	propagateAll(t, tr)

	// One checker round on still-inconsistent data: no repair.
	if err := op.cc.tick(); err != nil {
		t.Fatal(err)
	}
	propagateAll(t, tr)
	if op.ReadyToSync() {
		t.Error("genuinely inconsistent data cannot become Consistent")
	}

	// A user fixes the typo; the checker round then verifies and repairs.
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(4)}, []string{"city"},
			value.Tuple{value.Str("trondheim")})
	})
	propagateAll(t, tr)
	if err := op.cc.tick(); err != nil {
		t.Fatal(err)
	}
	propagateAll(t, tr)
	if !op.ReadyToSync() {
		t.Fatal("checker should have repaired s7050 after the fix")
	}
	s, _, _ := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if !s[op.flagPos].AsBool() || s[1].AsString() != "trondheim" {
		t.Errorf("repaired s7050 = %v", s)
	}
	rounds, repairs := op.CCStats()
	if rounds < 2 || repairs != 1 {
		t.Errorf("cc stats = %d rounds, %d repairs", rounds, repairs)
	}
}

func TestCCInvalidatedByConcurrentTouch(t *testing.T) {
	db := newSplitDB(t)
	seedInconsistent(t, db)
	tr, op := preparedSplit(t, db, Config{CheckConsistency: true})
	propagateAll(t, tr)

	// Fix the data, run a CC round (logs Begin/OK)...
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(4)}, []string{"city"},
			value.Tuple{value.Str("trondheim")})
	})
	propagateAll(t, tr)
	if err := op.cc.tick(); err != nil {
		t.Fatal(err)
	}
	// ...but a user touches a 7050 record between the CC marks (its log
	// record lands between CC-begin and CC-ok in the log? No — after CC-ok,
	// which is equivalent for the propagator: it sees the touch before
	// processing CC-ok only if ordered in between. Force the in-between
	// ordering by logging the touch now, before the propagator runs.)
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(1)}, []string{"city"},
			value.Tuple{value.Str("TRONDHEIM")})
	})
	propagateAll(t, tr)
	// The CC-ok was invalidated by the touch (conservative), so s7050 is
	// still Unknown.
	if op.ReadyToSync() {
		t.Error("CC round should have been invalidated by the concurrent touch")
	}
	// The next round (with no interleaving touch) fails: the touch made the
	// two 7050 cities disagree again. Repair once more and verify.
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(4)}, []string{"city"},
			value.Tuple{value.Str("TRONDHEIM")})
	})
	propagateAll(t, tr)
	if err := op.cc.tick(); err != nil {
		t.Fatal(err)
	}
	propagateAll(t, tr)
	if !op.ReadyToSync() {
		t.Error("second CC round should repair")
	}
}

func TestSplitEndToEndWithCCRepair(t *testing.T) {
	db := newSplitDB(t)
	seedInconsistent(t, db)
	tr, op := newSplitOp(t, db, Config{
		CheckConsistency: true,
		KeepSources:      true,
		StallIterations:  4,
	})
	// Repair the typo while the transformation runs.
	go func() {
		time.Sleep(5 * time.Millisecond)
		tx := db.Begin()
		if err := tx.Update("T", value.Tuple{value.Int(4)}, []string{"city"},
			value.Tuple{value.Str("trondheim")}); err != nil {
			_ = tx.Abort()
			return
		}
		_ = tx.Commit()
	}()
	if err := tr.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertSplitConverged(t, op)
	s, _, _ := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if !s[op.flagPos].AsBool() {
		t.Error("s7050 should end Consistent")
	}
}

func TestSplitGivesUpOnGenuinelyInconsistentData(t *testing.T) {
	db := newSplitDB(t)
	seedInconsistent(t, db)
	tr, _ := newSplitOp(t, db, Config{
		CheckConsistency: true,
		StallIterations:  1, // give up quickly
	})
	err := tr.Run(context.Background())
	if !errors.Is(err, ErrInconsistentData) {
		t.Fatalf("err = %v, want ErrInconsistentData", err)
	}
	if _, cerr := db.Catalog().Get("R"); cerr == nil {
		t.Error("targets should be dropped")
	}
	// The source survives untouched.
	if _, cerr := db.Catalog().Get("T"); cerr != nil {
		t.Error("source must survive")
	}
}

func TestCCFlagTransitionsDuringPropagation(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db) // consistent seed
	tr, op := preparedSplit(t, db, Config{CheckConsistency: true})
	// Insert a disagreeing record for zip 7050: flag goes Unknown.
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Insert("T", tRow(10, "zed", 7050, "TRONDHEIM"))
	})
	propagateAll(t, tr)
	s, _, _ := op.sTbl.Get(value.Tuple{value.Int(7050)})
	if s[op.flagPos].AsBool() {
		t.Error("disagreeing insert must flag Unknown")
	}
	// An update to a counter>1 record also flags Unknown (zip 50 has
	// counter 1, so updating it flips back to Consistent instead).
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Update("T", value.Tuple{value.Int(3)}, []string{"city"},
			value.Tuple{value.Str("OSLO")})
	})
	propagateAll(t, tr)
	s, _, _ = op.sTbl.Get(value.Tuple{value.Int(50)})
	if !s[op.flagPos].AsBool() {
		t.Error("full non-key update of counter-1 record must flag Consistent")
	}
}
