package core

import (
	"testing"
	"time"

	"nbschema/internal/engine"
)

func TestPhaseStrings(t *testing.T) {
	cases := map[Phase]string{
		PhaseIdle:          "idle",
		PhasePreparing:     "preparing",
		PhasePopulating:    "populating",
		PhasePropagating:   "propagating",
		PhaseSynchronizing: "synchronizing",
		PhaseDraining:      "draining",
		PhaseDone:          "done",
		PhaseAborted:       "aborted",
		Phase(42):          "phase(42)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	cases := map[SyncStrategy]string{
		NonBlockingAbort:  "non-blocking-abort",
		NonBlockingCommit: "non-blocking-commit",
		BlockingCommit:    "blocking-commit",
		SyncStrategy(9):   "strategy(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Strategy.String() = %q, want %q", got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Priority != 1 || c.BatchSize <= 0 || c.FuzzyChunk <= 0 || c.StallIterations <= 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
	if c.Analyzer == nil {
		t.Fatal("default analyzer missing")
	}
	// Out-of-range priority normalizes.
	if p := (Config{Priority: 3}).withDefaults().Priority; p != 1 {
		t.Errorf("priority 3 normalized to %v", p)
	}
	if p := (Config{Priority: -1}).withDefaults().Priority; p != 1 {
		t.Errorf("priority -1 normalized to %v", p)
	}
}

func TestAnalyzers(t *testing.T) {
	count := CountAnalyzer(10)
	if !count(Analysis{Remaining: 10}) || count(Analysis{Remaining: 11}) {
		t.Error("CountAnalyzer threshold wrong")
	}

	tm := TimeAnalyzer(100 * time.Millisecond)
	if !tm(Analysis{Duration: 50 * time.Millisecond}) || tm(Analysis{Duration: 150 * time.Millisecond}) {
		t.Error("TimeAnalyzer limit wrong")
	}

	est := EstimateAnalyzer(100 * time.Millisecond)
	// 1000 records at 50µs each = 50ms remaining: sync.
	if !est(Analysis{Remaining: 1000, Applied: 2000, Duration: 100 * time.Millisecond}) {
		t.Error("estimate below limit should sync")
	}
	// 10000 records at 50µs = 500ms: keep iterating.
	if est(Analysis{Remaining: 10000, Applied: 2000, Duration: 100 * time.Millisecond}) {
		t.Error("estimate above limit should not sync")
	}
	// Degenerate iteration: only sync when nothing remains.
	if !est(Analysis{Remaining: 0}) || est(Analysis{Remaining: 5}) {
		t.Error("degenerate estimate wrong")
	}
}

func TestTransformationAccessors(t *testing.T) {
	db := newJoinDB(t)
	seedJoin(t, db)
	tr, _ := newJoinOp(t, db, Config{Priority: 0.5})
	if tr.Phase() != PhaseIdle {
		t.Errorf("initial phase = %v", tr.Phase())
	}
	if tr.Priority() != 0.5 {
		t.Errorf("priority = %v", tr.Priority())
	}
	tr.SetPriority(0.25)
	if tr.Priority() != 0.25 {
		t.Errorf("after SetPriority = %v", tr.Priority())
	}
	tr.SetPriority(99) // out of range normalizes to full speed
	if tr.Priority() != 1 {
		t.Errorf("out-of-range priority = %v", tr.Priority())
	}
	if tr.Remaining() != 0 {
		t.Errorf("Remaining before start = %d", tr.Remaining())
	}
	if tr.Shadow() == nil {
		t.Error("Shadow must not be nil")
	}
	m := tr.Metrics()
	if m.RecordsApplied != 0 || m.Iterations != 0 {
		t.Errorf("fresh metrics = %+v", m)
	}
}

func TestRemainingTracksCursor(t *testing.T) {
	db := newJoinDB(t)
	seedJoin(t, db)
	tr, _ := prepared(t, db, Config{})
	before := tr.Remaining() // log tail past the fuzzy mark
	mustExec(t, db, func(tx *engine.Txn) error {
		return tx.Insert("R", rRow(99, "x", 1))
	})
	if tr.Remaining() <= before {
		t.Errorf("Remaining did not grow: %d -> %d", before, tr.Remaining())
	}
	propagateAll(t, tr)
	if tr.Remaining() != 0 {
		t.Errorf("Remaining after full propagation = %d", tr.Remaining())
	}
}

func TestNsKeyIsInjective(t *testing.T) {
	if nsKey("a", "b|c") == nsKey("a|b", "c") {
		t.Error("nsKey must separate table and key unambiguously")
	}
}
