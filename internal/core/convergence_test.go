package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nbschema/internal/engine"
	"nbschema/internal/value"
)

// chaos runs random transactions against the join sources until stop is
// closed. Roughly: inserts, deletes, join-attribute moves, payload updates,
// and deliberate aborts.
func chaosJoinWorkload(t *testing.T, db *engine.DB, seed int64, pace time.Duration, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(seed))
	for {
		select {
		case <-stop:
			return
		default:
		}
		// Closed-loop client with think time: without it a handful of
		// clients out-generate the single propagator and the transformation
		// can never synchronize (the §3.3 starvation case, which the stall
		// tests trigger deliberately with pace 0).
		if pace > 0 {
			time.Sleep(pace + time.Duration(rng.Intn(int(pace))))
		}
		tx := db.Begin()
		var err error
		nOps := 1 + rng.Intn(4)
		for i := 0; i < nOps && err == nil; i++ {
			switch rng.Intn(10) {
			case 0, 1: // insert R
				err = tx.Insert("R", rRow(rng.Int63n(400), randName(rng), rng.Int63n(40)))
			case 2: // insert S
				err = tx.Insert("S", sRowV(rng.Int63n(40), randName(rng)))
			case 3: // delete R
				err = tx.Delete("R", value.Tuple{value.Int(rng.Int63n(400))})
			case 4: // delete S
				err = tx.Delete("S", value.Tuple{value.Int(rng.Int63n(40))})
			case 5, 6: // move R join attribute
				err = tx.Update("R", value.Tuple{value.Int(rng.Int63n(400))},
					[]string{"c"}, value.Tuple{value.Int(rng.Int63n(40))})
			case 7: // move S join attribute (re-keys S)
				err = tx.Update("S", value.Tuple{value.Int(rng.Int63n(40))},
					[]string{"c"}, value.Tuple{value.Int(rng.Int63n(40))})
			case 8: // plain R update
				err = tx.Update("R", value.Tuple{value.Int(rng.Int63n(400))},
					[]string{"b"}, value.Tuple{value.Str(randName(rng))})
			case 9: // plain S update
				err = tx.Update("S", value.Tuple{value.Int(rng.Int63n(40))},
					[]string{"d"}, value.Tuple{value.Str(randName(rng))})
			}
		}
		// Missing records, duplicates, doomed transactions and lock
		// conflicts are all expected here; roll back and move on.
		if err != nil || rng.Intn(8) == 0 {
			if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, engine.ErrTxnDone) {
				t.Errorf("abort: %v", aerr)
				return
			}
			continue
		}
		if cerr := tx.Commit(); cerr != nil {
			if errors.Is(cerr, engine.ErrTxnDoomed) {
				if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, engine.ErrTxnDone) {
					t.Errorf("abort doomed: %v", aerr)
					return
				}
				continue
			}
			if !errors.Is(cerr, engine.ErrTxnDone) {
				t.Errorf("commit: %v", cerr)
				return
			}
		}
	}
}

var names = []string{"oslo", "bergen", "molde", "tromso", "trondheim", "bodo", "alta"}

func randName(rng *rand.Rand) string { return names[rng.Intn(len(names))] }

// TestConvergenceUnderConcurrentLoad is the central correctness property of
// the paper: a transformation running concurrently with arbitrary update
// traffic converges so that, at completion, T = FOJ(R, S) exactly.
func TestConvergenceUnderConcurrentLoad(t *testing.T) {
	for _, strategy := range []SyncStrategy{NonBlockingAbort, NonBlockingCommit, BlockingCommit} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			db := newJoinDB(t)
			mustExec(t, db, func(tx *engine.Txn) error {
				for i := int64(0); i < 150; i++ {
					if err := tx.Insert("R", rRow(i, "init", i%30)); err != nil {
						return err
					}
				}
				for i := int64(0); i < 30; i += 2 {
					if err := tx.Insert("S", sRowV(i, "city")); err != nil {
						return err
					}
				}
				return nil
			})

			tr, op := newJoinOp(t, db, Config{
				Strategy:      strategy,
				KeepSources:   true,
				Priority:      0.9,
				Analyzer:      CountAnalyzer(16),
				MaxIterations: 500, // safety: sync even if the tail stays long
			})

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go chaosJoinWorkload(t, db, int64(w)+int64(strategy)*100, 150*time.Microsecond, stop, &wg)
			}
			// Let the workload churn before and during the transformation.
			time.Sleep(30 * time.Millisecond)
			err := tr.Run(context.Background())
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}

			// Quiesce: any surviving old transactions are gone (Run waited);
			// now the final states must agree exactly.
			assertConverged(t, op)
			if tr.Shadow().LockedKeys() != 0 {
				t.Errorf("shadow locks leaked: %d", tr.Shadow().LockedKeys())
			}
		})
	}
}

// TestConvergenceLowPriority exercises the throttled background path.
func TestConvergenceLowPriority(t *testing.T) {
	db := newJoinDB(t)
	seedJoin(t, db)
	tr, op := newJoinOp(t, db, Config{
		Priority:      0.3,
		BatchSize:     8,
		KeepSources:   true,
		MaxIterations: 500,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go chaosJoinWorkload(t, db, 7, 150*time.Microsecond, stop, &wg)
	err := tr.Run(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertConverged(t, op)
}

// TestStallAbort forces a propagation stall and checks the configured
// policy fires.
func TestStallAbort(t *testing.T) {
	db := newJoinDB(t)
	seedJoin(t, db)
	tr, _ := newJoinOp(t, db, Config{
		Priority:        0.02, // almost no propagation budget
		Strategy:        NonBlockingAbort,
		Analyzer:        CountAnalyzer(0), // effectively never satisfied under load
		StallPolicy:     StallAbort,
		StallIterations: 2,
		StallTimeout:    200 * time.Millisecond,
		BatchSize:       4,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go chaosJoinWorkload(t, db, int64(w), 0, stop, &wg)
	}
	err := tr.Run(context.Background())
	close(stop)
	wg.Wait()
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if _, cerr := db.Catalog().Get("T"); cerr == nil {
		t.Error("target should be dropped after stall abort")
	}
}

// TestStallBoostRecovers verifies the boost policy raises priority until the
// propagator catches up.
func TestStallBoostRecovers(t *testing.T) {
	db := newJoinDB(t)
	// A big enough base that the initial backlog cannot drain within the
	// stall timeout at 2%% priority.
	mustExec(t, db, func(tx *engine.Txn) error {
		for i := int64(0); i < 2000; i++ {
			if err := tx.Insert("R", rRow(i, "init", i%40)); err != nil {
				return err
			}
		}
		return nil
	})
	tr, op := newJoinOp(t, db, Config{
		Priority:        0.01,
		Strategy:        NonBlockingAbort,
		StallPolicy:     StallBoost,
		StallIterations: 1,
		StallTimeout:    10 * time.Millisecond,
		BatchSize:       4,
		KeepSources:     true,
		MaxIterations:   2000,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go chaosJoinWorkload(t, db, 3, 100*time.Microsecond, stop, &wg)
	done := make(chan error, 1)
	go func() { done <- tr.Run(context.Background()) }()
	select {
	case err := <-done:
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(30 * time.Second):
		close(stop)
		t.Fatal("boost policy did not let the transformation finish")
	}
	if tr.Priority() <= 0.01 {
		t.Errorf("priority never boosted: %v", tr.Priority())
	}
	assertConverged(t, op)
}
