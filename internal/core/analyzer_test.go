package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"nbschema/internal/engine"
	"nbschema/internal/obs"
	"nbschema/internal/value"
)

func TestCountAnalyzer(t *testing.T) {
	a := CountAnalyzer(64)
	cases := []struct {
		remaining int
		want      bool
	}{
		{0, true}, {64, true}, {65, false}, {1000, false},
	}
	for _, c := range cases {
		if got := a(Analysis{Remaining: c.remaining}); got != c.want {
			t.Errorf("CountAnalyzer(64)(Remaining=%d) = %v, want %v", c.remaining, got, c.want)
		}
	}
}

func TestTimeAnalyzer(t *testing.T) {
	a := TimeAnalyzer(10 * time.Millisecond)
	if !a(Analysis{Duration: 10 * time.Millisecond}) {
		t.Error("iteration exactly at the limit should sync")
	}
	if a(Analysis{Duration: 11 * time.Millisecond}) {
		t.Error("iteration over the limit should not sync")
	}
	// A zero-duration iteration (no work) is trivially within any limit.
	if !a(Analysis{Duration: 0}) {
		t.Error("zero-duration iteration should sync")
	}
}

func TestEstimateAnalyzer(t *testing.T) {
	a := EstimateAnalyzer(10 * time.Millisecond)

	// 100 records at 1ms each → 100ms estimated: keep propagating.
	if a(Analysis{Remaining: 100, Applied: 50, Duration: 50 * time.Millisecond}) {
		t.Error("100ms estimate should not sync under a 10ms limit")
	}
	// 5 records at 1ms each → 5ms estimated: sync.
	if !a(Analysis{Remaining: 5, Applied: 50, Duration: 50 * time.Millisecond}) {
		t.Error("5ms estimate should sync under a 10ms limit")
	}

	// Applied == 0: no rate observed. Only an empty backlog may sync —
	// a non-empty one has an unknown cost.
	if !a(Analysis{Remaining: 0, Applied: 0, Duration: time.Second}) {
		t.Error("empty backlog with no rate should sync")
	}
	if a(Analysis{Remaining: 1, Applied: 0, Duration: time.Second}) {
		t.Error("non-empty backlog with no rate should not sync")
	}

	// Duration == 0: same guard (instantaneous iterations give no usable
	// per-record cost).
	if !a(Analysis{Remaining: 0, Applied: 10, Duration: 0}) {
		t.Error("empty backlog with zero duration should sync")
	}
	if a(Analysis{Remaining: 7, Applied: 10, Duration: 0}) {
		t.Error("non-empty backlog with zero duration should not sync")
	}
}

func execTxn(db *engine.DB, f func(tx *engine.Txn) error) error {
	tx := db.Begin()
	if err := f(tx); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// TestTraceAndProgress runs a split under concurrent updates and checks the
// structured trace and the live Progress snapshots.
func TestTraceAndProgress(t *testing.T) {
	db := newSplitDB(t)
	// A table large enough that population and propagation overlap the
	// concurrent updater (the 4-row seed converges before it lands a write).
	mustExec(t, db, func(tx *engine.Txn) error {
		for i := int64(1); i <= 1500; i++ {
			if err := tx.Insert("T", tRow(i, "n", i%20, "c")); err != nil {
				return err
			}
		}
		return nil
	})

	var sinkMu sync.Mutex
	var streamed []obs.Event
	// The analyzer doubles as a deterministic injector: after the first
	// iteration it commits a batch of updates (necessarily after the fuzzy
	// mark) and demands one more iteration, guaranteeing rule-10 traffic
	// regardless of goroutine scheduling.
	var injected bool
	var injectErr error
	tr, err := NewSplit(db, splitSpec(), Config{
		Strategy: NonBlockingAbort,
		Analyzer: func(a Analysis) bool {
			if !injected {
				injected = true
				injectErr = execTxn(db, func(tx *engine.Txn) error {
					for i := int64(1); i <= 25; i++ {
						if err := tx.Update("T", value.Tuple{value.Int(i)},
							[]string{"name"}, value.Tuple{value.Str("inj")}); err != nil {
							return err
						}
					}
					return nil
				})
				return false
			}
			return a.Remaining <= 4
		},
		Sink: obs.FuncSink(func(ev obs.Event) {
			sinkMu.Lock()
			streamed = append(streamed, ev)
			sinkMu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent updates generate log records for the propagator to trace.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin()
			err := tx.Update("T", value.Tuple{value.Int(int64(i%1500 + 1))},
				[]string{"name"}, value.Tuple{value.Str("upd")})
			if err == nil {
				_ = tx.Commit()
			} else {
				_ = tx.Abort()
			}
		}
	}()

	// Let the updater get going before the fuzzy mark is taken so commits
	// land in the propagation window.
	time.Sleep(10 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- tr.Run(context.Background()) }()

	// Poll Progress while the transformation runs: snapshots must be
	// internally consistent from any goroutine.
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
polling:
	for {
		select {
		case err := <-done:
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if injectErr != nil {
				t.Fatalf("injected updates failed: %v", injectErr)
			}
			break polling
		case <-tick.C:
			pr := tr.Progress()
			if pr.Remaining < 0 || pr.RecordsApplied < 0 || pr.Iteration < 0 {
				t.Fatalf("inconsistent progress: %+v", pr)
			}
		}
	}

	// Final progress: done, drained, trivially valid ETA.
	pr := tr.Progress()
	if pr.Phase != PhaseDone {
		t.Fatalf("final phase = %v, want done", pr.Phase)
	}
	if pr.Remaining != 0 || !pr.ETAValid {
		t.Errorf("final progress: remaining=%d etaValid=%v, want 0/true", pr.Remaining, pr.ETAValid)
	}
	if pr.InitialImageRows != tr.Metrics().InitialImageRows {
		t.Errorf("progress initial image rows %d != metrics %d",
			pr.InitialImageRows, tr.Metrics().InitialImageRows)
	}

	// The buffered ring and the custom sink saw the same stream.
	trace := tr.Trace()
	sinkMu.Lock()
	nStreamed := len(streamed)
	sinkMu.Unlock()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if tr.TraceDropped() == 0 && nStreamed != len(trace) {
		t.Errorf("custom sink saw %d events, ring has %d", nStreamed, len(trace))
	}

	// Events are strictly ordered and the lifecycle milestones all appear.
	kinds := map[obs.EventKind]int{}
	for i, ev := range trace {
		if i > 0 && ev.Seq <= trace[i-1].Seq {
			t.Fatalf("trace not ordered: seq %d after %d", ev.Seq, trace[i-1].Seq)
		}
		kinds[ev.Kind]++
	}
	for _, want := range []obs.EventKind{
		obs.EventPhase, obs.EventFuzzyMark, obs.EventPopulateChunk,
		obs.EventIteration, obs.EventSyncLatched, obs.EventSwitchover,
		obs.EventDone,
	} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %v event (kinds: %v)", want, kinds)
		}
	}

	// Iteration events carry per-rule deltas. They can undercount the
	// totals — the final latched catch-up applies records without an
	// iteration event — but never overcount.
	ruleSum := map[string]int64{}
	var applied int64
	for _, ev := range trace {
		if ev.Kind != obs.EventIteration {
			continue
		}
		applied += int64(ev.Applied)
		for r, n := range ev.Rules {
			ruleSum[r] += n
		}
	}
	if total := tr.Metrics().RecordsApplied; applied > total {
		t.Errorf("iteration events sum to %d applied, metrics say only %d", applied, total)
	}
	totals := tr.RuleApplications()
	for r, n := range ruleSum {
		if totals[r] < n {
			t.Errorf("rule %s: iteration deltas sum to %d, totals say only %d", r, n, totals[r])
		}
	}
	// A split propagates updates with rules 10/11 (updates on name hit the
	// R part → rule 10).
	if totals["rule10"] == 0 {
		t.Errorf("expected rule10 applications, got %v (metrics %+v, kinds %v)",
			totals, tr.Metrics(), kinds)
	}

	// The done event reports the final rule totals and target tables.
	last := trace[len(trace)-1]
	if last.Kind != obs.EventDone {
		t.Fatalf("last event = %v, want done", last.KindName)
	}
	if len(last.Tables) == 0 || last.Duration <= 0 {
		t.Errorf("done event missing tables/duration: %+v", last)
	}
}

// TestProgressETA checks the ETA arithmetic against a hand-built state.
func TestProgressETA(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	tr, _ := newSplitOp(t, db, Config{})

	// Simulate a completed iteration: 100 records in 100ms → 1ms/record.
	tr.mu.Lock()
	tr.runStart = time.Now()
	tr.lastA = Analysis{Applied: 100, Duration: 100 * time.Millisecond}
	tr.cursor = 1 // everything in the log is backlog
	tr.mu.Unlock()
	tr.phase.Store(int32(PhasePropagating))

	pr := tr.Progress()
	if !pr.ETAValid {
		t.Fatal("ETA should be valid after a productive iteration")
	}
	wantETA := time.Duration(pr.Remaining) * time.Millisecond
	if pr.ETA != wantETA {
		t.Errorf("ETA = %v, want %v (remaining %d at 1ms/record)", pr.ETA, wantETA, pr.Remaining)
	}
	if pr.Rate < 999 || pr.Rate > 1001 {
		t.Errorf("rate = %v, want ~1000 rec/s", pr.Rate)
	}

	// No observed rate and a non-empty backlog → ETA not valid.
	tr.mu.Lock()
	tr.lastA = Analysis{}
	tr.mu.Unlock()
	if pr := tr.Progress(); pr.ETAValid && pr.Remaining > 0 {
		t.Errorf("ETA claimed valid with no observed rate: %+v", pr)
	}
}
