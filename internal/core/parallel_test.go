package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nbschema/internal/engine"
	"nbschema/internal/value"
	"nbschema/internal/wal"
)

// splitCities maps each script zip to its one city, so the history keeps the
// functional dependency zip→city intact. An FD-violating history makes the S
// payload depend on which contributing T row is absorbed first — legitimately
// nondeterministic even for a fully serial run (paper §5.3) — which would
// drown the serial-vs-parallel comparison in noise.
var splitCities = map[int64]string{50: "oslo", 5020: "bergen", 7050: "trondheim", 9000: "molde"}

// applySplitHistory runs a deterministic random operation script against the
// split source through sequential transactions: inserts and deletes (two
// conflict keys each), zip+city updates (barriers — they touch S columns),
// name-only updates (the parallel-friendly class), and random aborts so CLRs
// land in the log too.
func applySplitHistory(t *testing.T, db *engine.DB, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	zips := []int64{50, 5020, 7050, 9000}
	for i := 0; i < n; i++ {
		tx := db.Begin()
		id := rng.Int63n(40)
		zip := zips[rng.Intn(len(zips))]
		var err error
		switch rng.Intn(4) {
		case 0:
			err = tx.Insert("T", tRow(id, randName(rng), zip, splitCities[zip]))
		case 1:
			err = tx.Delete("T", value.Tuple{value.Int(id)})
		case 2:
			err = tx.Update("T", value.Tuple{value.Int(id)},
				[]string{"zip", "city"}, value.Tuple{value.Int(zip), value.Str(splitCities[zip])})
		case 3:
			err = tx.Update("T", value.Tuple{value.Int(id)},
				[]string{"name"}, value.Tuple{value.Str(randName(rng))})
		}
		if err != nil {
			if aerr := tx.Abort(); aerr != nil {
				t.Fatal(aerr)
			}
			continue
		}
		if rng.Intn(5) == 0 { // aborts exercise CLR propagation
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// propagateThrottled propagates the whole backlog through a real throttler,
// which is what enables the parallel dispatch path (propagateAll passes a nil
// throttler and deliberately stays serial).
func propagateThrottled(t *testing.T, tr *Transformation) {
	t.Helper()
	tr.mu.Lock()
	from := tr.cursor
	tr.mu.Unlock()
	end := tr.db.Log().End()
	if _, _, err := tr.propagateRange(from, end, newThrottler(tr)); err != nil {
		t.Fatalf("propagate: %v", err)
	}
	tr.mu.Lock()
	tr.cursor = end + 1
	tr.mu.Unlock()
}

// TestPropertyParallelPropagationMatchesSerial: for any random history, a
// split propagated with PropagateWorkers=8 produces byte-identical R and S
// images to the same history propagated with PropagateWorkers=1. The small
// BatchSize forces many parallel flushes instead of one big batch.
func TestPropertyParallelPropagationMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		run := func(workers int) (*splitOp, map[string]value.Tuple, map[string]value.Tuple) {
			db := newSplitDB(t)
			seedSplit(t, db)
			applySplitHistory(t, db, seed*17+3, 30) // history before population
			tr, op := preparedSplit(t, db, Config{PropagateWorkers: workers, BatchSize: 8})
			applySplitHistory(t, db, seed, 90) // history during propagation
			propagateThrottled(t, tr)
			return op, op.rTbl.Rows(), op.sTbl.Rows()
		}
		op, serialR, serialS := run(1)
		_, parallelR, parallelS := run(8)

		if len(serialR) != len(parallelR) || len(serialS) != len(parallelS) {
			return false
		}
		for k, w := range serialR {
			g, ok := parallelR[k]
			if !ok || !g.Equal(w) {
				return false
			}
		}
		for k, w := range serialS {
			g, ok := parallelS[k]
			// Visible payload and counter must match exactly; only the
			// hidden consistency flags (absent here) could ever differ.
			if !ok || !g.Equal(w) {
				return false
			}
		}
		_ = op
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestSplitConflictKeysClassification pins the conflict-key contract the
// parallel propagator depends on: which records parallelize under which keys
// and which must be barriers.
func TestSplitConflictKeysClassification(t *testing.T) {
	db := newSplitDB(t)
	seedSplit(t, db)
	_, op := preparedSplit(t, db, Config{})

	key := value.Tuple{value.Int(1)}
	row := tRow(1, "peter", 7050, "trondheim")

	cases := []struct {
		name    string
		rec     *wal.Record
		barrier bool
		want    []string // required key prefixes/values, order-insensitive
	}{
		{"cc begin", &wal.Record{Type: wal.TypeCCBegin, Key: value.Tuple{value.Int(7050)}}, true, nil},
		{"commit", &wal.Record{Type: wal.TypeCommit, Txn: 9}, false, []string{"txn\x009"}},
		{"abort", &wal.Record{Type: wal.TypeAbort, Txn: 9}, false, []string{"txn\x009"}},
		{"insert", &wal.Record{Type: wal.TypeInsert, Txn: 9, Table: "T", Key: key, Row: row},
			false, []string{"txn\x009", "r\x00", "s\x00"}},
		{"delete", &wal.Record{Type: wal.TypeDelete, Txn: 9, Table: "T", Key: key, Row: row},
			false, []string{"txn\x009", "r\x00", "s\x00"}},
		{"payload-less CLR delete",
			&wal.Record{Type: wal.TypeCLR, Redo: wal.TypeDelete, Txn: 9, Table: "T", Key: key}, true, nil},
		{"name-only update",
			&wal.Record{Type: wal.TypeUpdate, Txn: 9, Table: "T", Key: key,
				Cols: []int{1}, New: value.Tuple{value.Str("x")}},
			false, []string{"txn\x009", "r\x00"}},
		{"zip update (S column)",
			&wal.Record{Type: wal.TypeUpdate, Txn: 9, Table: "T", Key: key,
				Cols: []int{2}, New: value.Tuple{value.Int(50)}}, true, nil},
		{"city update (S column)",
			&wal.Record{Type: wal.TypeUpdate, Txn: 9, Table: "T", Key: key,
				Cols: []int{3}, New: value.Tuple{value.Str("x")}}, true, nil},
		{"primary-key update",
			&wal.Record{Type: wal.TypeUpdate, Txn: 9, Table: "T", Key: key,
				Cols: []int{0}, New: value.Tuple{value.Int(2)}}, true, nil},
	}
	for _, c := range cases {
		keys, ok := op.conflictKeys(c.rec)
		if c.barrier {
			if ok {
				t.Errorf("%s: classified parallel-safe with keys %q, want barrier", c.name, keys)
			}
			continue
		}
		if !ok {
			t.Errorf("%s: classified barrier, want keys %q", c.name, c.want)
			continue
		}
		for _, want := range c.want {
			found := false
			for _, k := range keys {
				if k == want || strings.HasPrefix(k, want) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: keys %q missing %q", c.name, keys, want)
			}
		}
		if len(keys) != len(c.want) {
			t.Errorf("%s: got %d keys %q, want %d", c.name, len(keys), keys, len(c.want))
		}
	}
}

// TestFOJDoesNotParallelize pins the deliberate decision that the full outer
// join operator propagates serially: its group-level rules have touch sets
// that depend on data (join-attribute lookups), so it must never advertise
// conflict keys.
func TestFOJDoesNotParallelize(t *testing.T) {
	var op operator = (*fojOp)(nil)
	if _, ok := op.(conflictKeyer); ok {
		t.Fatal("fojOp implements conflictKeyer; FOJ propagation is not key-separable")
	}
	if _, ok := operator((*splitOp)(nil)).(conflictKeyer); !ok {
		t.Fatal("splitOp no longer implements conflictKeyer; parallel propagation is dead code")
	}
}

// TestGroupByConflicts checks the union-find grouping: records sharing any
// conflict key land in one group in LSN order; disjoint records split into
// groups ordered by their earliest record.
func TestGroupByConflicts(t *testing.T) {
	recs := []*wal.Record{
		{LSN: 1}, {LSN: 2}, {LSN: 3}, {LSN: 4}, {LSN: 5},
	}
	keys := [][]string{
		{"a"},      // 1
		{"b"},      // 2
		{"a", "c"}, // 3: joins 1 via a
		{"d"},      // 4
		{"c", "b"}, // 5: joins 3 via c, and 2 via b → all of 1,2,3,5 together
	}
	groups := groupByConflicts(recs, keys)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	var g0 []wal.LSN
	for _, r := range groups[0] {
		g0 = append(g0, r.LSN)
	}
	if len(g0) != 4 || g0[0] != 1 || g0[1] != 2 || g0[2] != 3 || g0[3] != 5 {
		t.Errorf("merged group = %v, want [1 2 3 5] in LSN order", g0)
	}
	if len(groups[1]) != 1 || groups[1][0].LSN != 4 {
		t.Errorf("singleton group = %v, want [4]", groups[1])
	}
}

// TestParallelPopulateMatchesSerial: initial population with many workers
// over the partitioned heap must build the same R and S images as a single
// worker, including multiplicity counters.
func TestParallelPopulateMatchesSerial(t *testing.T) {
	build := func(workers int) (map[string]value.Tuple, map[string]value.Tuple) {
		db := newSplitDB(t)
		seedSplit(t, db)
		applySplitHistory(t, db, 42, 120)
		_, op := preparedSplit(t, db, Config{PropagateWorkers: workers})
		return op.rTbl.Rows(), op.sTbl.Rows()
	}
	serialR, serialS := build(1)
	parallelR, parallelS := build(8)
	if len(serialR) != len(parallelR) {
		t.Fatalf("R: %d rows serial vs %d parallel", len(serialR), len(parallelR))
	}
	for k, w := range serialR {
		if g, ok := parallelR[k]; !ok || !g.Equal(w) {
			t.Errorf("R row %q differs: serial %v parallel %v", k, w, parallelR[k])
		}
	}
	if len(serialS) != len(parallelS) {
		t.Fatalf("S: %d rows serial vs %d parallel", len(serialS), len(parallelS))
	}
	for k, w := range serialS {
		if g, ok := parallelS[k]; !ok || !g.Equal(w) {
			t.Errorf("S row %q differs: serial %v parallel %v", k, w, parallelS[k])
		}
	}
}
