package core

import (
	"context"
	"fmt"

	"nbschema/internal/catalog"
	"nbschema/internal/engine"
)

// RecoverConfig configures crash recovery of an interrupted transformation.
type RecoverConfig struct {
	// Targets names tables known to be transformation targets; they are
	// dropped regardless of their catalog state. Tables in the hidden state
	// are treated as orphaned targets even when not listed here, since only
	// a transformation creates hidden tables.
	Targets []string
	// Rerun, when non-nil, is invoked after cleanup to restart the
	// transformation from scratch. It builds the transformation against the
	// recovered database; Recover then runs it to completion.
	Rerun func(db *engine.DB) (*Transformation, error)
}

// RecoverReport describes what Recover found and did.
type RecoverReport struct {
	// Orphaned reports whether an unfinished transformation was detected.
	Orphaned bool
	// DroppedTargets lists the orphaned target tables that were dropped.
	DroppedTargets []string
	// ReopenedSources lists source tables reverted from the dropping state
	// back to public use.
	ReopenedSources []string
	// Rerun reports whether the transformation was re-executed.
	Rerun bool
	// Transformation is the re-run transformation when Rerun happened
	// (metrics, phase and operator inspection).
	Transformation *Transformation
}

// Recover detects and cleans up a transformation that was interrupted by a
// crash. The paper's recovery story (§6) is that a transformation needs no
// recovery protocol of its own: target tables are populated outside the log,
// so after an engine restart they are empty shells — recovery simply drops
// them and, because the synchronization never completed, reverts any source
// caught mid-switchover to public use. The transformation can then be re-run
// from scratch (RecoverConfig.Rerun).
//
// A target that reached the public state is left alone: a published target
// means synchronization completed and the table's contents are
// reconstructible by re-propagation, which the caller opted into by naming
// it in Targets — such tables are dropped too, since their post-crash
// storage is empty.
func Recover(ctx context.Context, db *engine.DB, cfg RecoverConfig) (RecoverReport, error) {
	var rep RecoverReport

	listed := make(map[string]bool, len(cfg.Targets))
	for _, t := range cfg.Targets {
		listed[t] = true
	}

	for _, name := range db.Catalog().List() {
		def, err := db.Catalog().Get(name)
		if err != nil {
			continue // dropped concurrently
		}
		switch {
		case listed[name] || def.State == catalog.StateHidden:
			if err := db.DropTable(name); err != nil {
				return rep, fmt.Errorf("core: recover: drop target %s: %w", name, err)
			}
			rep.DroppedTargets = append(rep.DroppedTargets, name)
		case def.State == catalog.StateDropping:
			if err := db.Reopen(name); err != nil {
				return rep, fmt.Errorf("core: recover: reopen source %s: %w", name, err)
			}
			rep.ReopenedSources = append(rep.ReopenedSources, name)
		}
	}
	rep.Orphaned = len(rep.DroppedTargets) > 0 || len(rep.ReopenedSources) > 0

	if rep.Orphaned && cfg.Rerun != nil {
		tr, err := cfg.Rerun(db)
		if err != nil {
			return rep, fmt.Errorf("core: recover: rebuild transformation: %w", err)
		}
		if err := tr.Run(ctx); err != nil {
			return rep, fmt.Errorf("core: recover: re-run: %w", err)
		}
		rep.Rerun = true
		rep.Transformation = tr
	}
	return rep, nil
}
