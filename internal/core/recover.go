package core

import (
	"context"
	"fmt"

	"nbschema/internal/catalog"
	"nbschema/internal/engine"
	"nbschema/internal/wal"
)

// RecoverConfig configures crash recovery of an interrupted transformation.
type RecoverConfig struct {
	// Targets names tables known to be transformation targets; they are
	// dropped regardless of their catalog state. Tables in the hidden state
	// are treated as orphaned targets even when not listed here, since only
	// a transformation creates hidden tables.
	Targets []string
	// Rerun, when non-nil, is invoked after cleanup to restart the
	// transformation from scratch. It builds the transformation against the
	// recovered database; Recover then runs it to completion.
	Rerun func(db *engine.DB) (*Transformation, error)
	// Resume, when true, re-attaches to an in-flight transformation instead
	// of dropping its targets, provided the database was restarted from a
	// checkpoint whose snapshot covers the transformation's initial
	// population (lifecycle.go). Propagation then restarts from the logged
	// low-water mark — completed population work is never redone. When the
	// preconditions do not hold, recovery silently falls back to the
	// drop-and-rerun path.
	Resume bool
	// ResumeConfig tunes the resumed transformation. The function-valued
	// knobs of a Config (analyzer, sink, rerun hooks) cannot be
	// reconstructed from the log, so the caller supplies them anew; the
	// zero value gets the usual defaults.
	ResumeConfig Config
}

// RecoverReport describes what Recover found and did.
type RecoverReport struct {
	// Orphaned reports whether an unfinished transformation was detected.
	Orphaned bool
	// DroppedTargets lists the orphaned target tables that were dropped.
	DroppedTargets []string
	// ReopenedSources lists source tables reverted from the dropping state
	// back to public use.
	ReopenedSources []string
	// Rerun reports whether the transformation was re-executed from scratch.
	Rerun bool
	// Resumed reports whether an in-flight transformation was re-attached
	// and driven to completion from its logged low-water mark.
	Resumed bool
	// ResumeCursor is the propagation cursor the resumed transformation
	// restarted from (0 unless Resumed).
	ResumeCursor wal.LSN
	// FinishedSwitchover reports that a transformation crashed after its
	// catalog switchover was restored complete from a checkpoint, and
	// recovery finished the remaining bookkeeping (dropping the doomed
	// sources) instead of rolling the switchover back.
	FinishedSwitchover bool
	// Transformation is the re-run or resumed transformation (metrics,
	// phase and operator inspection).
	Transformation *Transformation
}

// Recover detects and cleans up a transformation that was interrupted by a
// crash. The paper's recovery story (§6) is that a transformation needs no
// recovery protocol of its own: target tables are populated outside the log,
// so after a full-replay restart they are empty shells — recovery simply
// drops them and, because the synchronization never completed, reverts any
// source caught mid-switchover to public use. The transformation can then be
// re-run from scratch (RecoverConfig.Rerun).
//
// Checkpoints refine that story, because a fuzzy snapshot durably captures
// the hidden targets mid-flight. Using the lifecycle records in the log
// (lifecycle.go), Recover distinguishes:
//
//   - An attempt whose transform-done record is covered — the database was
//     never restarted (Recover called again on a live engine), or the
//     restored checkpoint began after the done record. Its published targets
//     are complete; they are left alone even when listed in Targets, making
//     Recover idempotent.
//   - An attempt that switched over before a covering checkpoint but never
//     logged done. The restored targets are public and complete; recovery
//     finishes the switchover (drops the doomed sources) instead of
//     reopening them against a live copy.
//   - An in-flight attempt (population logged complete before the restored
//     checkpoint began, no switchover). With cfg.Resume, recovery rebuilds
//     the operator from the logged spec and resumes propagation at the
//     logged low-water mark; re-applied records are absorbed by the
//     idempotent rules.
//   - Anything else falls back to the paper's drop-and-rerun path.
func Recover(ctx context.Context, db *engine.DB, cfg RecoverConfig) (RecoverReport, error) {
	var rep RecoverReport

	rc := db.RestoredCheckpoint()
	var bound wal.LSN
	if rc != nil {
		bound = rc.Begin
	}
	st := scanTransformLog(db.Log(), bound)

	// covered reports whether the effects preceding the record at lsn are
	// durably present in this database's storage: the engine was never
	// restarted (everything is live), the record was appended by this
	// process after its restart finished (e.g. by a resumed or re-run
	// transformation), or the restored checkpoint's fuzzy scan started
	// after the record was appended.
	covered := func(lsn wal.LSN) bool {
		if !db.Restarted() || lsn > db.RestartLSN() {
			return true
		}
		return rc != nil && rc.Begin > lsn
	}

	// Tables recovery must not touch, keyed by name.
	protect := make(map[string]bool)

	finishSwitch := false
	switch {
	case st.done != nil && !st.doneMeta.Aborted && covered(st.done.LSN):
		// Completed attempt whose results survived; leave its targets alone,
		// and its retired sources too — with KeepSources they stay in the
		// dropping state by design, not because a switchover was cut short.
		for _, t := range st.doneMeta.Targets {
			protect[t] = true
		}
		for _, s := range st.doneMeta.Sources {
			protect[s] = true
		}
	case st.start != nil && st.done == nil && st.switched != nil && covered(st.switched.LSN):
		// Crashed between switchover and done with the switchover restored
		// complete: keep the public targets, finish dropping the sources.
		// A spec that cannot be decoded or rebuilt here is a hard error:
		// proceeding would drop the completed public targets and reopen the
		// doomed sources while still reporting the switchover as finished.
		finishSwitch = true
		meta, err := decodeTransformMeta(st.start)
		if err != nil {
			return rep, fmt.Errorf("core: recover: finish switchover: %w", err)
		}
		tr, err := rebuildTransformation(db, meta, cfg.ResumeConfig)
		if err != nil {
			return rep, fmt.Errorf("core: recover: finish switchover: %w", err)
		}
		for _, t := range tr.op.Targets() {
			protect[t] = true
		}
		for _, s := range tr.op.Sources() {
			if stt, err := db.Catalog().StateOf(s); err == nil && stt == catalog.StateDropping {
				if err := db.DropTable(s); err != nil {
					return rep, fmt.Errorf("core: recover: drop source %s: %w", s, err)
				}
			}
		}
	}

	// Resume eligibility: in-flight attempt, initial population logged
	// complete before the restored checkpoint began (so the snapshot holds
	// the populated image), no switchover.
	var resumeTr *Transformation
	var resumeCursor wal.LSN
	if cfg.Resume && !finishSwitch && rc != nil &&
		st.start != nil && st.switched == nil && st.done == nil &&
		st.populated != nil && st.populated.LSN < rc.Begin {
		if meta, err := decodeTransformMeta(st.start); err == nil {
			if tr, err := rebuildTransformation(db, meta, cfg.ResumeConfig); err == nil {
				resumeTr = tr
				resumeCursor = st.populated.Mark
				if st.progress > resumeCursor {
					resumeCursor = st.progress
				}
				for _, t := range tr.op.Targets() {
					protect[t] = true
				}
			}
		}
	}

	listed := make(map[string]bool, len(cfg.Targets))
	for _, t := range cfg.Targets {
		listed[t] = true
	}

	for _, name := range db.Catalog().List() {
		def, err := db.Catalog().Get(name)
		if err != nil {
			continue // dropped concurrently
		}
		switch {
		case protect[name]:
			// Restored transformation state; not an orphan.
		case listed[name] || def.State == catalog.StateHidden:
			if err := db.DropTable(name); err != nil {
				return rep, fmt.Errorf("core: recover: drop target %s: %w", name, err)
			}
			rep.DroppedTargets = append(rep.DroppedTargets, name)
		case def.State == catalog.StateDropping:
			if err := db.Reopen(name); err != nil {
				return rep, fmt.Errorf("core: recover: reopen source %s: %w", name, err)
			}
			rep.ReopenedSources = append(rep.ReopenedSources, name)
		}
	}
	rep.FinishedSwitchover = finishSwitch
	rep.Orphaned = len(rep.DroppedTargets) > 0 || len(rep.ReopenedSources) > 0 ||
		resumeTr != nil || finishSwitch

	if resumeTr != nil {
		err := resumeTr.Resume(ctx, resumeCursor)
		if err == nil {
			rep.Resumed = true
			rep.ResumeCursor = resumeCursor
			rep.Transformation = resumeTr
			return rep, nil
		}
		// A failed resume cleaned up its targets (Transformation.Resume);
		// fall through to the from-scratch path when one is configured.
		if cfg.Rerun == nil {
			return rep, fmt.Errorf("core: recover: resume: %w", err)
		}
	}

	if rep.Orphaned && !finishSwitch && cfg.Rerun != nil {
		tr, err := cfg.Rerun(db)
		if err != nil {
			return rep, fmt.Errorf("core: recover: rebuild transformation: %w", err)
		}
		if err := tr.Run(ctx); err != nil {
			return rep, fmt.Errorf("core: recover: re-run: %w", err)
		}
		rep.Rerun = true
		rep.Transformation = tr
	}
	return rep, nil
}
