package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"nbschema/internal/engine"
	"nbschema/internal/obs"
	"nbschema/internal/wal"
)

// Transformation lifecycle records. A running transformation journals its
// progress into the WAL so crash recovery can re-attach to it instead of
// discarding all completed work:
//
//   - transform-start (Meta = operator kind + spec as JSON) marks target
//     creation; everything after it belongs to this transformation attempt.
//   - transform-phase (Mark = propagation start cursor) marks the initial
//     population complete: every target storage write of the population
//     happened before this record was appended.
//   - transform-progress (Mark = cursor) is appended once per propagation
//     iteration: every source log record with LSN below Mark has been
//     applied to the targets before the record was appended.
//   - transform-switch (Mark = switchover LSN) marks the catalog switchover;
//     past it the targets are public and a crash is no longer resumable
//     from these records alone (recovery falls back to drop-and-rerun, or to
//     a checkpoint taken after completion).
//   - transform-done (Meta = outcome JSON) marks the attempt finished —
//     committed or cleanly aborted. Recovery leaves the published targets of
//     a committed attempt alone.
//
// The records carry Txn 0 and are not operations: restart bookkeeping and
// log propagation both ignore them.

// transformMeta is the JSON payload of transform-start records: enough to
// rebuild the operator after a crash.
type transformMeta struct {
	Kind  string     `json:"kind"` // "foj" or "split"
	Join  *JoinSpec  `json:"join,omitempty"`
	Split *SplitSpec `json:"split,omitempty"`
}

// doneMeta is the JSON payload of transform-done records. Sources lists the
// source tables of a committed attempt: with Config.KeepSources they remain
// in the dropping state on purpose, and recovery must not "reopen" them as if
// a crash had interrupted the switchover.
type doneMeta struct {
	Targets []string `json:"targets,omitempty"`
	Sources []string `json:"sources,omitempty"`
	Aborted bool     `json:"aborted,omitempty"`
}

// logStart appends the transform-start record carrying the operator spec.
func (tr *Transformation) logStart() error {
	meta, err := json.Marshal(tr.op.describe())
	if err != nil {
		return fmt.Errorf("core: encoding transformation spec: %w", err)
	}
	tr.db.Log().Append(&wal.Record{Type: wal.TypeTransformStart, Meta: meta})
	return nil
}

// logPopulated appends the transform-phase record marking the initial
// population complete, with the propagation start cursor.
func (tr *Transformation) logPopulated(cursor wal.LSN) {
	tr.db.Log().Append(&wal.Record{Type: wal.TypeTransformPhase, Mark: cursor})
}

// logProgress appends a transform-progress record: every source record below
// cursor has been applied to the targets.
func (tr *Transformation) logProgress(cursor wal.LSN) {
	tr.db.Log().Append(&wal.Record{Type: wal.TypeTransformProgress, Mark: cursor})
}

// logSwitch appends the transform-switch record at catalog switchover.
func (tr *Transformation) logSwitch(at wal.LSN) {
	tr.db.Log().Append(&wal.Record{Type: wal.TypeTransformSwitch, Mark: at})
}

// logDone appends the transform-done record closing this attempt.
func (tr *Transformation) logDone(aborted bool) {
	var targets, sources []string
	if !aborted {
		targets = append(targets, tr.op.Targets()...)
		sources = append(sources, tr.op.Sources()...)
	}
	meta, err := json.Marshal(doneMeta{Targets: targets, Sources: sources, Aborted: aborted})
	if err != nil {
		meta = nil
	}
	tr.db.Log().Append(&wal.Record{Type: wal.TypeTransformDone, Meta: meta})
}

// transformLogState summarizes the lifecycle records of the latest
// transformation attempt found in the log.
type transformLogState struct {
	start     *wal.Record // latest transform-start (nil: no attempt logged)
	populated *wal.Record // latest transform-phase after start
	// progress is the highest transform-progress Mark after start among
	// records appended at or below bound (0 bound = no records considered).
	progress wal.LSN
	switched *wal.Record // transform-switch after start
	done     *wal.Record // transform-done after start
	doneMeta doneMeta
}

// scanTransformLog walks the log and reduces it to the lifecycle state of
// the latest transformation attempt. Only progress records with LSN at or
// below bound are folded into progress: a record appended after bound (the
// restored checkpoint's begin LSN) claims work the checkpoint's fuzzy scans
// may not have seen yet.
func scanTransformLog(log *wal.Log, bound wal.LSN) transformLogState {
	var st transformLogState
	for _, rec := range log.Scan(1, 0) {
		switch rec.Type {
		case wal.TypeTransformStart:
			st = transformLogState{start: rec}
		case wal.TypeTransformPhase:
			if st.start != nil {
				st.populated = rec
			}
		case wal.TypeTransformProgress:
			if st.start != nil && rec.LSN <= bound && rec.Mark > st.progress {
				st.progress = rec.Mark
			}
		case wal.TypeTransformSwitch:
			if st.start != nil {
				st.switched = rec
			}
		case wal.TypeTransformDone:
			if st.start != nil {
				st.done = rec
				st.doneMeta = doneMeta{}
				if len(rec.Meta) > 0 {
					_ = json.Unmarshal(rec.Meta, &st.doneMeta)
				}
			}
		}
	}
	return st
}

// decodeTransformMeta parses a transform-start record's spec payload.
func decodeTransformMeta(rec *wal.Record) (transformMeta, error) {
	var meta transformMeta
	if err := json.Unmarshal(rec.Meta, &meta); err != nil {
		return meta, fmt.Errorf("core: decoding transformation spec at LSN %d: %w", rec.LSN, err)
	}
	return meta, nil
}

// rebuildTransformation reconstructs a transformation from a logged spec.
func rebuildTransformation(db *engine.DB, meta transformMeta, cfg Config) (*Transformation, error) {
	switch meta.Kind {
	case "foj":
		if meta.Join == nil {
			return nil, fmt.Errorf("core: transform-start record of kind foj carries no join spec")
		}
		return NewFullOuterJoin(db, *meta.Join, cfg)
	case "split":
		if meta.Split == nil {
			return nil, fmt.Errorf("core: transform-start record of kind split carries no split spec")
		}
		return NewSplit(db, *meta.Split, cfg)
	default:
		return nil, fmt.Errorf("core: unknown transformation kind %q in transform-start record", meta.Kind)
	}
}

// Resume re-attaches to an in-flight transformation after a checkpoint
// restart and drives it to completion, skipping preparation and initial
// population entirely: the restored snapshot already holds the populated
// target image, and cursor — the logged propagation low-water mark — bounds
// the log suffix that must be re-propagated. Re-application of records the
// crashed process had already applied past the last logged mark is absorbed
// by the operators' idempotent rules. On error the target tables are
// dropped, exactly as a failed Run, so the caller can fall back to a
// from-scratch re-run.
func (tr *Transformation) Resume(ctx context.Context, cursor wal.LSN) error {
	start := time.Now()
	tr.mu.Lock()
	tr.runStart = start
	tr.cursor = cursor
	tr.mu.Unlock()
	// The logged low-water mark guarantees records below cursor are applied.
	tr.noteApplied(cursor - 1)
	tr.mRunning.Add(1)
	defer tr.mRunning.Add(-1)
	defer tr.mBacklog.Set(0)
	defer func() {
		rounds, repairs := tr.op.CCStats()
		tr.mu.Lock()
		tr.metrics.TotalDuration = time.Since(start)
		tr.metrics.CCRounds = rounds
		tr.metrics.CCRepairs = repairs
		tr.mu.Unlock()
	}()

	if err := tr.resume(ctx, cursor); err != nil {
		tr.setPhase(PhaseAborted)
		tr.db.ClearHooks()
		tr.shadow.SetEnforce(false)
		cerr := tr.op.Cleanup()
		tr.logDone(true)
		tr.emit(obs.EventAbort, func(ev *obs.Event) {
			ev.Err = err.Error()
			ev.Duration = time.Since(start)
		})
		if cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	}
	tr.logDone(false)
	tr.setPhase(PhaseDone)
	tr.emit(obs.EventDone, func(ev *obs.Event) {
		ev.Duration = time.Since(start)
		ev.Rules = tr.RuleApplications()
		ev.Tables = append([]string(nil), tr.op.Targets()...)
	})
	return nil
}

// resume is Run's body minus steps 1 and 2: re-bind the operator to the
// restored storage, then propagate from the resume cursor and synchronize.
// The fault point core.resume fires after re-attachment.
func (tr *Transformation) resume(ctx context.Context, cursor wal.LSN) error {
	tr.emit(obs.EventResume, func(ev *obs.Event) { ev.LSN = uint64(cursor) })
	if err := tr.op.reattach(); err != nil {
		return fmt.Errorf("core: reattach: %w", err)
	}
	tr.installHooks()
	if err := tr.faultHit("resume"); err != nil {
		return err
	}

	tr.setPhase(PhasePropagating)
	if err := tr.faultHit("phase.propagating"); err != nil {
		return err
	}
	propStart := time.Now()
	if err := tr.propagateLoop(ctx); err != nil {
		return fmt.Errorf("core: propagate: %w", err)
	}
	tr.mu.Lock()
	tr.metrics.PropagationDuration = time.Since(propStart)
	tr.mu.Unlock()

	tr.setPhase(PhaseSynchronizing)
	if err := tr.faultHit("phase.synchronizing"); err != nil {
		return err
	}
	if err := tr.synchronize(ctx); err != nil {
		return fmt.Errorf("core: synchronize: %w", err)
	}
	tr.db.ClearHooks()
	tr.shadow.SetEnforce(false)
	return nil
}
