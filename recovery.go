package nbschema

import (
	"context"
	"io"

	"nbschema/internal/catalog"
	"nbschema/internal/core"
	"nbschema/internal/engine"
	"nbschema/internal/fault"
	"nbschema/internal/wal"
)

// FaultRegistry is a registry of named fault points for deterministic fault
// injection in tests: arm a point with a trigger (every hit, the Nth hit, a
// seeded probability) and an action (return an error, panic as a simulated
// crash, sleep), pass the registry via Options.Faults, and the instrumented
// seams — WAL append and read, storage writes, lock and latch acquisition,
// every transformation phase transition — fire it. Disarmed points cost one
// atomic load.
type FaultRegistry = fault.Registry

// NewFaultRegistry returns an empty fault registry.
func NewFaultRegistry() *FaultRegistry { return fault.New() }

// Fault triggers and actions, re-exported so FaultRegistry.Arm is usable
// without importing the internal package.
var (
	FaultAlways  = fault.Always      // fire on every hit
	FaultOnHit   = fault.OnHit       // fire exactly on the nth hit
	FaultFromHit = fault.FromHit     // fire on the nth hit and after
	FaultEveryN  = fault.EveryN      // fire on every nth hit
	FaultProb    = fault.Prob        // fire with probability p (seeded)
	FaultError   = fault.ErrorAction // return an error wrapping ErrInjected
	FaultCrash   = fault.CrashAction // panic with a Crash value
	FaultSleep   = fault.SleepAction // delay the hit
)

// ErrInjected is the sentinel all injected fault errors wrap.
var ErrInjected = fault.ErrInjected

// AsCrash reports whether a recovered panic value is an injected crash,
// for process-simulation boundaries in tests.
var AsCrash = fault.AsCrash

// WALCorruption describes where a serialized write-ahead log stopped being
// decodable: the byte offset and record index of the first bad frame, and
// whether it was a torn tail (a frame cut short by a crash mid-append) as
// opposed to in-place corruption.
type WALCorruption = wal.CorruptionError

// RecoverReport describes what DB.Recover found and did.
type RecoverReport = core.RecoverReport

// CheckpointStats describes one completed fuzzy checkpoint.
type CheckpointStats = engine.CheckpointStats

// RestoredCheckpoint describes the checkpoint a restart recovered from.
type RestoredCheckpoint = engine.RestoredCheckpoint

// TableSpec names one table for Restart: the schema is not logged, so a
// restarting process supplies it.
type TableSpec struct {
	Name       string
	Columns    []Column
	PrimaryKey []string
}

func (s TableSpec) def() (*catalog.TableDef, error) {
	cc := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		cc[i] = catalog.Column{Name: c.Name, Type: c.Type, Nullable: c.Nullable}
	}
	return catalog.NewTableDef(s.Name, cc, s.PrimaryKey)
}

// WriteLog serializes the write-ahead log to w (checksummed binary frames).
// Together with Restart it round-trips a database across a process
// boundary.
func (db *DB) WriteLog(w io.Writer) (int64, error) {
	return db.eng.Log().WriteTo(w)
}

// Restart rebuilds a database from a serialized write-ahead log: an
// ARIES-style redo pass replays all logged work, then losers — transactions
// without a commit or abort record — are rolled back. With
// Options.LenientWAL set, the log is truncated at the first undecodable
// frame and the cut is reported in the returned *WALCorruption (nil when
// the log was intact; Torn distinguishes a crash-torn tail from in-place
// corruption); without it, any corruption fails the restart.
//
// If the crash interrupted a schema transformation, follow Restart with
// DB.Recover.
func Restart(r io.Reader, tables []TableSpec, opts ...Options) (*DB, *WALCorruption, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	defs := make([]*catalog.TableDef, len(tables))
	for i, s := range tables {
		def, err := s.def()
		if err != nil {
			return nil, nil, err
		}
		defs[i] = def
	}
	eng, cut, err := engine.RestartFrom(defs, r, o.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	return &DB{
		eng:                eng,
		propagateWorkers:   o.PropagateWorkers,
		compactPropagation: o.CompactPropagation,
	}, cut, nil
}

// Recover cleans up a schema transformation interrupted by a crash: target
// tables named here (or left in the hidden state) are dropped — they were
// populated outside the log, so after a restart they are empty shells — and
// sources caught mid-switchover are reopened for public use. The
// transformation can then simply be run again (§6 of the paper).
//
// Recover is idempotent: targets of a transformation whose completion
// survived (the engine is live, or a checkpoint taken after completion was
// restored) are left alone even when named here.
func (db *DB) Recover(ctx context.Context, targets ...string) (RecoverReport, error) {
	return core.Recover(ctx, db.eng, core.RecoverConfig{Targets: targets})
}

// RecoverOptions configures RecoverWith.
type RecoverOptions struct {
	// Targets names tables known to be transformation targets (see Recover).
	Targets []string
	// Resume re-attaches to a transformation that was mid-flight at the
	// crash, provided the database was restarted from a checkpoint covering
	// its initial population (RestartWithCheckpoint). Propagation restarts
	// from the logged low-water mark — population work is never redone. When
	// the preconditions fail, recovery silently falls back to dropping the
	// targets (re-run the transformation from scratch).
	Resume bool
	// ResumeOptions tunes the resumed transformation; function-valued knobs
	// (analyzer thresholds, trace sinks) cannot be reconstructed from the
	// log, so they are supplied anew here.
	ResumeOptions TransformOptions
}

// RecoverWith is Recover with resume support: see RecoverOptions.
func (db *DB) RecoverWith(ctx context.Context, opts RecoverOptions) (RecoverReport, error) {
	rep, err := core.Recover(ctx, db.eng, core.RecoverConfig{
		Targets:      opts.Targets,
		Resume:       opts.Resume,
		ResumeConfig: opts.ResumeOptions.config(db),
	})
	if rep.Transformation != nil {
		db.track(rep.Transformation)
	}
	return rep, err
}

// Checkpoint takes a fuzzy checkpoint now and writes its snapshot to w.
// Writers are never stopped; the snapshot may mix row versions, which the
// WAL suffix past the checkpoint repairs on restart (guarded, idempotent
// redo). Checkpoints appended to one stream accumulate; RestartWithCheckpoint
// uses the newest complete one. Automatic checkpoints are configured with
// Options.CheckpointEvery / CheckpointEveryBytes / CheckpointSink.
func (db *DB) Checkpoint(w io.Writer) (CheckpointStats, error) {
	return db.eng.Checkpoint(w)
}

// RestoredCheckpoint returns the checkpoint this database was restarted
// from, or nil for a fresh database or a full-replay restart.
func (db *DB) RestoredCheckpoint() *RestoredCheckpoint {
	return db.eng.RestoredCheckpoint()
}

// ReplayedRecords returns how many operation records the restart redo pass
// applied — the observable recovery bound: with a checkpoint it is limited
// to the log suffix past the checkpoint's per-table low-water marks instead
// of the full history.
func (db *DB) ReplayedRecords() int64 { return db.eng.ReplayedRecords() }

// RestartWithCheckpoint rebuilds a database from a serialized log plus a
// checkpoint snapshot stream (as written by Checkpoint or an automatic
// CheckpointSink). The newest complete checkpoint in snap is restored and
// only the WAL suffix past its begin record is replayed; a torn, corrupt or
// log-inconsistent checkpoint silently falls back to a full replay of the
// log, so recovery always converges to the same state. A nil snap is
// exactly Restart.
func RestartWithCheckpoint(log, snap io.Reader, tables []TableSpec, opts ...Options) (*DB, *WALCorruption, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	defs := make([]*catalog.TableDef, len(tables))
	for i, s := range tables {
		def, err := s.def()
		if err != nil {
			return nil, nil, err
		}
		defs[i] = def
	}
	eng, cut, err := engine.RestartFromSnapshot(defs, log, snap, o.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	return &DB{
		eng:                eng,
		propagateWorkers:   o.PropagateWorkers,
		compactPropagation: o.CompactPropagation,
	}, cut, nil
}
