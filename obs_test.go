package nbschema_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nbschema"
)

// TestMetricsThroughPublicAPI opens a database with a metrics registry and
// checks that transaction traffic shows up in the snapshot and over HTTP.
func TestMetricsThroughPublicAPI(t *testing.T) {
	reg := nbschema.NewMetricsRegistry()
	db := nbschema.Open(nbschema.Options{
		LockTimeout: 200 * time.Millisecond,
		Metrics:     reg,
	})
	if db.Metrics() != reg {
		t.Fatal("DB.Metrics did not return the configured registry")
	}
	err := db.CreateTable("customer", []nbschema.Column{
		{Name: "id", Type: nbschema.Int},
		{Name: "name", Type: nbschema.String, Nullable: true},
		{Name: "zip", Type: nbschema.Int},
		{Name: "city", Type: nbschema.String, Nullable: true},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	seedCustomers(t, db)

	tx := db.Begin()
	if err := tx.Update("customer", []any{1}, []string{"name"}, []any{"updated"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"engine.txn.begin":  3, // seed + update + abort
		"engine.txn.commit": 2,
		"engine.txn.abort":  1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for _, name := range []string{"wal.append", "engine.lock.acquire", "storage.insert", "storage.update"} {
		if snap.Counters[name] == 0 {
			t.Errorf("%s never counted", name)
		}
	}
	if h, ok := snap.Histograms["engine.txn.commit_latency"]; !ok || h.Count != 2 {
		t.Errorf("commit latency histogram = %+v, want 2 observations", h)
	}

	// Prometheus text exposition.
	srv := httptest.NewServer(nbschema.MetricsHandler(reg))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, "engine_txn_commit_total 2") {
		t.Errorf("prometheus output missing commit counter:\n%s", text)
	}
	if !strings.Contains(text, "engine_txn_commit_latency_bucket") {
		t.Errorf("prometheus output missing histogram buckets:\n%s", text)
	}

	// JSON exposition.
	res, err = srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var got nbschema.MetricsSnapshot
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	res.Body.Close()
	if got.Counters["engine.txn.commit"] != 2 {
		t.Errorf("json snapshot commit = %d, want 2", got.Counters["engine.txn.commit"])
	}
}

// TestTransformObservabilityThroughPublicAPI runs a split with a custom trace
// sink and checks trace, per-rule counts, progress and transform metrics from
// the public surface.
func TestTransformObservabilityThroughPublicAPI(t *testing.T) {
	reg := nbschema.NewMetricsRegistry()
	db := nbschema.Open(nbschema.Options{
		LockTimeout: 200 * time.Millisecond,
		Metrics:     reg,
	})
	err := db.CreateTable("customer", []nbschema.Column{
		{Name: "id", Type: nbschema.Int},
		{Name: "name", Type: nbschema.String, Nullable: true},
		{Name: "zip", Type: nbschema.Int},
		{Name: "city", Type: nbschema.String, Nullable: true},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 500; i++ {
		if err := tx.Insert("customer", i, "n", 1000+i%50, "c"); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var streamed []nbschema.TraceEvent
	tr, err := db.Split(nbschema.SplitSpec{
		Source: "customer", Left: "customer_base", Right: "place",
		SplitOn: []string{"zip"}, RightOnly: []string{"city"},
	}, nbschema.TransformOptions{
		SyncThreshold: 16,
		Trace: nbschema.TraceFunc(func(ev nbschema.TraceEvent) {
			mu.Lock()
			streamed = append(streamed, ev)
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	pr := tr.Progress()
	if pr.Phase != nbschema.PhaseDone || pr.Remaining != 0 || !pr.ETAValid {
		t.Errorf("final progress = %+v", pr)
	}
	if pr.InitialImageRows != 500 {
		t.Errorf("initial image rows = %d, want 500", pr.InitialImageRows)
	}

	trace := tr.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	mu.Lock()
	n := len(streamed)
	mu.Unlock()
	if n != len(trace) {
		t.Errorf("custom sink saw %d events, ring buffered %d", n, len(trace))
	}
	last := trace[len(trace)-1]
	if last.KindName != "done" {
		t.Errorf("last event %q, want done", last.KindName)
	}

	// The engine-level transform gauges/counters were wired too.
	snap := reg.Snapshot()
	if snap.Counters["core.iterations"] == 0 {
		t.Error("core.iterations never counted")
	}
	if snap.Gauges["core.running"] != 0 {
		t.Errorf("core.running = %d after completion, want 0", snap.Gauges["core.running"])
	}
}
