package nbschema

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDeadlockDetectionPublicAPI drives a 2-transaction deadlock through the
// public API and asserts the victim gets ErrDeadlock (retryable) well before
// the lock timeout, while the survivor completes.
func TestDeadlockDetectionPublicAPI(t *testing.T) {
	timeout := 5 * time.Second
	db := Open(Options{LockTimeout: timeout})
	if err := db.CreateTable("acct", []Column{
		{Name: "id", Type: Int},
		{Name: "bal", Type: Int},
	}, "id"); err != nil {
		t.Fatal(err)
	}
	setup := db.Begin()
	for i := 1; i <= 2; i++ {
		if err := setup.Insert("acct", i, 100); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	// Both transactions lock their own row before either crosses over, so
	// the cross-reads are guaranteed to collide.
	txs := [2]*Txn{db.Begin(), db.Begin()}
	for i, tx := range txs {
		if err := tx.Update("acct", []any{i + 1}, []string{"bal"}, []any{50}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := txs[i]
			if _, err := tx.Get("acct", 2-i); err != nil {
				errs[i] = err
				_ = tx.Abort()
				return
			}
			errs[i] = tx.Commit()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var deadlocks, oks int
	for _, err := range errs {
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
			if !IsRetryable(err) {
				t.Errorf("ErrDeadlock not retryable: %v", err)
			}
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || oks != 1 {
		t.Fatalf("deadlocks=%d oks=%d, want exactly one victim and one survivor", deadlocks, oks)
	}
	if elapsed > timeout/4 {
		t.Errorf("deadlock resolution took %v; want well under the %v timeout", elapsed, timeout)
	}
}

// TestDebugHandlerPublicAPI mounts DebugHandler and checks the endpoints
// reflect a live transaction and a prepared transformation.
func TestDebugHandlerPublicAPI(t *testing.T) {
	db := Open(Options{Metrics: NewMetricsRegistry()})
	if err := db.CreateTable("customer", []Column{
		{Name: "id", Type: Int},
		{Name: "zip", Type: Int},
		{Name: "city", Type: String, Nullable: true},
	}, "id"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("customer", 1, 7050, "Trondheim"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Split(SplitSpec{
		Source: "customer", Left: "customer_base", Right: "place",
		SplitOn: []string{"zip"}, RightOnly: []string{"city"},
	}, TransformOptions{}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(DebugHandler(db))
	defer srv.Close()
	fetch := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}

	var txns struct {
		Active []struct {
			ID   uint64 `json:"id"`
			Held []any  `json:"held"`
		} `json:"active"`
	}
	if err := json.Unmarshal([]byte(fetch("/debug/txns")), &txns); err != nil {
		t.Fatal(err)
	}
	if len(txns.Active) != 1 || txns.Active[0].ID != tx.ID() || len(txns.Active[0].Held) == 0 {
		t.Errorf("/debug/txns = %+v, want txn %d holding a lock", txns.Active, tx.ID())
	}

	var tr struct {
		Transformations []struct {
			Phase string `json:"phase"`
		} `json:"transformations"`
	}
	if err := json.Unmarshal([]byte(fetch("/debug/transform")), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Transformations) != 1 || tr.Transformations[0].Phase == "" {
		t.Errorf("/debug/transform = %+v, want one prepared transformation", tr.Transformations)
	}
	if got := len(db.Transformations()); got != 1 {
		t.Errorf("Transformations() = %d, want 1", got)
	}

	if dot := fetch("/debug/waitsfor?format=dot"); !strings.Contains(dot, "digraph waitsfor") {
		t.Errorf("waitsfor DOT = %q", dot)
	}
	if wal := fetch("/debug/wal"); !strings.Contains(wal, "end_lsn") {
		t.Errorf("/debug/wal = %q", wal)
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestLagAndTimelineEndpoints runs a split to completion on a timeline-enabled
// database and checks the two observability endpoints end to end: /debug/lag
// serves the freshness watermarks with a switchover verdict, and
// /debug/timeline serves valid Chrome trace-event JSON whose spans are
// monotonic and whose phase spans nest consistently (sequential, never
// overlapping on the coordinator track).
func TestLagAndTimelineEndpoints(t *testing.T) {
	db := Open(Options{Metrics: NewMetricsRegistry(), Timeline: true, LagSLO: time.Second})
	if err := db.CreateTable("customer", []Column{
		{Name: "id", Type: Int},
		{Name: "zip", Type: Int},
		{Name: "city", Type: String, Nullable: true},
	}, "id"); err != nil {
		t.Fatal(err)
	}
	setup := db.Begin()
	for i := 1; i <= 200; i++ {
		if err := setup.Insert("customer", i, 1000+i%50, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	tr, err := db.Split(SplitSpec{
		Source: "customer", Left: "customer_base", Right: "place",
		SplitOn: []string{"zip"}, RightOnly: []string{"city"},
	}, TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(DebugHandler(db))
	defer srv.Close()
	fetch := func(path string) []byte {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		return b
	}

	var lag struct {
		SLONs           int64 `json:"slo_ns"`
		Transformations []struct {
			Phase     string `json:"phase"`
			Freshness struct {
				AppliedLSN uint64 `json:"applied_lsn"`
				Backlog    int    `json:"backlog"`
				LagNs      int64  `json:"lag_ns"`
			} `json:"freshness"`
			Ready *bool `json:"switchover_ready"`
		} `json:"transformations"`
	}
	if err := json.Unmarshal(fetch("/debug/lag?slo=100ms"), &lag); err != nil {
		t.Fatalf("/debug/lag is not valid JSON: %v", err)
	}
	if lag.SLONs != (100 * time.Millisecond).Nanoseconds() {
		t.Errorf("slo_ns = %d", lag.SLONs)
	}
	if len(lag.Transformations) != 1 {
		t.Fatalf("lag entries = %d, want 1", len(lag.Transformations))
	}
	e := lag.Transformations[0]
	if e.Phase != "done" || e.Freshness.LagNs != 0 || e.Freshness.AppliedLSN == 0 {
		t.Errorf("lag entry = %+v, want done/fresh with an applied watermark", e)
	}
	if e.Ready == nil || !*e.Ready {
		t.Errorf("switchover_ready = %v, want true for a finished transformation", e.Ready)
	}
	if resp, err := srv.Client().Get(srv.URL + "/debug/lag?slo=nonsense"); err != nil || resp.StatusCode != 400 {
		t.Errorf("bad slo must 400, got %v/%v", resp.StatusCode, err)
	}

	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  int64  `json:"pid"`
			Tid  int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(fetch("/debug/timeline"), &trace); err != nil {
		t.Fatalf("/debug/timeline is not valid Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("timeline trace is empty after a full transformation")
	}
	type span struct{ start, end int64 }
	var phases []span
	phaseNames := map[string]bool{}
	lastTs := int64(-1 << 62)
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X", "i":
		default:
			t.Fatalf("unexpected event phase %q in %+v", ev.Ph, ev)
		}
		if ev.Pid != 1 || ev.Name == "" {
			t.Fatalf("malformed event %+v", ev)
		}
		if ev.Ts < lastTs {
			t.Fatalf("event %q ts %d breaks monotonic order (prev %d)", ev.Name, ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		if ev.Ph == "X" && ev.Cat == "phase" {
			phases = append(phases, span{ev.Ts, ev.Ts + ev.Dur})
			phaseNames[ev.Name] = true
		}
	}
	if len(phases) < 2 {
		t.Fatalf("want at least populate+propagate phase spans, got %d", len(phases))
	}
	for _, want := range []string{"populating", "propagating"} {
		if !phaseNames[want] {
			t.Errorf("phase span %q missing (have %v)", want, phaseNames)
		}
	}
	// Lifecycle phases are sequential: spans on the coordinator track must
	// not overlap (1µs slack for the trace's microsecond rounding).
	for i := 1; i < len(phases); i++ {
		if phases[i].start < phases[i-1].end-1 {
			t.Errorf("phase span %d (ts %d) overlaps previous (end %d)",
				i, phases[i].start, phases[i-1].end)
		}
	}
}
