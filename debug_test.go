package nbschema

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDeadlockDetectionPublicAPI drives a 2-transaction deadlock through the
// public API and asserts the victim gets ErrDeadlock (retryable) well before
// the lock timeout, while the survivor completes.
func TestDeadlockDetectionPublicAPI(t *testing.T) {
	timeout := 5 * time.Second
	db := Open(Options{LockTimeout: timeout})
	if err := db.CreateTable("acct", []Column{
		{Name: "id", Type: Int},
		{Name: "bal", Type: Int},
	}, "id"); err != nil {
		t.Fatal(err)
	}
	setup := db.Begin()
	for i := 1; i <= 2; i++ {
		if err := setup.Insert("acct", i, 100); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	// Both transactions lock their own row before either crosses over, so
	// the cross-reads are guaranteed to collide.
	txs := [2]*Txn{db.Begin(), db.Begin()}
	for i, tx := range txs {
		if err := tx.Update("acct", []any{i + 1}, []string{"bal"}, []any{50}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := txs[i]
			if _, err := tx.Get("acct", 2-i); err != nil {
				errs[i] = err
				_ = tx.Abort()
				return
			}
			errs[i] = tx.Commit()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var deadlocks, oks int
	for _, err := range errs {
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
			if !IsRetryable(err) {
				t.Errorf("ErrDeadlock not retryable: %v", err)
			}
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || oks != 1 {
		t.Fatalf("deadlocks=%d oks=%d, want exactly one victim and one survivor", deadlocks, oks)
	}
	if elapsed > timeout/4 {
		t.Errorf("deadlock resolution took %v; want well under the %v timeout", elapsed, timeout)
	}
}

// TestDebugHandlerPublicAPI mounts DebugHandler and checks the endpoints
// reflect a live transaction and a prepared transformation.
func TestDebugHandlerPublicAPI(t *testing.T) {
	db := Open(Options{Metrics: NewMetricsRegistry()})
	if err := db.CreateTable("customer", []Column{
		{Name: "id", Type: Int},
		{Name: "zip", Type: Int},
		{Name: "city", Type: String, Nullable: true},
	}, "id"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("customer", 1, 7050, "Trondheim"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Split(SplitSpec{
		Source: "customer", Left: "customer_base", Right: "place",
		SplitOn: []string{"zip"}, RightOnly: []string{"city"},
	}, TransformOptions{}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(DebugHandler(db))
	defer srv.Close()
	fetch := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}

	var txns struct {
		Active []struct {
			ID   uint64 `json:"id"`
			Held []any  `json:"held"`
		} `json:"active"`
	}
	if err := json.Unmarshal([]byte(fetch("/debug/txns")), &txns); err != nil {
		t.Fatal(err)
	}
	if len(txns.Active) != 1 || txns.Active[0].ID != tx.ID() || len(txns.Active[0].Held) == 0 {
		t.Errorf("/debug/txns = %+v, want txn %d holding a lock", txns.Active, tx.ID())
	}

	var tr struct {
		Transformations []struct {
			Phase string `json:"phase"`
		} `json:"transformations"`
	}
	if err := json.Unmarshal([]byte(fetch("/debug/transform")), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Transformations) != 1 || tr.Transformations[0].Phase == "" {
		t.Errorf("/debug/transform = %+v, want one prepared transformation", tr.Transformations)
	}
	if got := len(db.Transformations()); got != 1 {
		t.Errorf("Transformations() = %d, want 1", got)
	}

	if dot := fetch("/debug/waitsfor?format=dot"); !strings.Contains(dot, "digraph waitsfor") {
		t.Errorf("waitsfor DOT = %q", dot)
	}
	if wal := fetch("/debug/wal"); !strings.Contains(wal, "end_lsn") {
		t.Errorf("/debug/wal = %q", wal)
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
