package nbschema

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func customerSpec() TableSpec {
	return TableSpec{
		Name: "customer",
		Columns: []Column{
			{Name: "id", Type: Int},
			{Name: "name", Type: String, Nullable: true},
			{Name: "zip", Type: Int},
			{Name: "city", Type: String, Nullable: true},
		},
		PrimaryKey: []string{"id"},
	}
}

func seedCustomers(t *testing.T, db *DB) {
	t.Helper()
	spec := customerSpec()
	if err := db.CreateTable(spec.Name, spec.Columns, spec.PrimaryKey...); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i, row := range [][]any{
		{int64(1), "peter", int64(7050), "trondheim"},
		{int64(2), "mark", int64(5020), "bergen"},
	} {
		if err := tx.Insert("customer", row...); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRestartRoundTrip(t *testing.T) {
	db := Open()
	seedCustomers(t, db)

	var buf strings.Builder
	if _, err := db.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}

	db2, cut, err := Restart(strings.NewReader(buf.String()), []TableSpec{customerSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if cut != nil {
		t.Fatalf("intact log reported corruption: %v", cut)
	}
	if n, _ := db2.Rows("customer"); n != 2 {
		t.Fatalf("restarted db has %d rows, want 2", n)
	}
}

func TestPublicRestartLenientTruncatesTornTail(t *testing.T) {
	db := Open()
	seedCustomers(t, db)
	var buf strings.Builder
	if _, err := db.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	torn := buf.String()[:buf.Len()-3] // cut the final frame short

	// Strict restart refuses the log.
	if _, _, err := Restart(strings.NewReader(torn), []TableSpec{customerSpec()}); err == nil {
		t.Fatal("strict restart accepted a torn log")
	}
	// Lenient restart truncates and reports the cut.
	db2, cut, err := Restart(strings.NewReader(torn), []TableSpec{customerSpec()},
		Options{LenientWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if cut == nil || !cut.Torn() {
		t.Fatalf("cut = %v, want torn-tail report", cut)
	}
	if db2 == nil {
		t.Fatal("lenient restart returned no database")
	}
}

func TestPublicFaultInjection(t *testing.T) {
	reg := NewFaultRegistry()
	db := Open(Options{Faults: reg})
	seedCustomers(t, db)

	// Arm the generic storage insert point: the next insert fails with the
	// injected error, and the transaction can be rolled back normally.
	reg.Arm("storage.insert", FaultOnHit(1), FaultError(nil))
	tx := db.Begin()
	err := tx.Insert("customer", int64(3), "gary", int64(50), "oslo")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("insert error = %v, want injected fault", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	reg.Reset()

	tx = db.Begin()
	if err := tx.Insert("customer", int64(3), "gary", int64(50), "oslo"); err != nil {
		t.Fatalf("insert after disarm: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRecoverDropsOrphanedTargets(t *testing.T) {
	db := Open()
	seedCustomers(t, db)
	tr, err := db.Split(SplitSpec{
		Source: "customer", Left: "customer_base", Right: "place",
		SplitOn: []string{"zip"}, RightOnly: []string{"city"},
	}, TransformOptions{KeepSources: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate the post-crash restart: the log replays the source only; the
	// target tables exist in the reloaded schema but were never logged.
	var buf strings.Builder
	if _, err := db.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	db2, _, err := Restart(strings.NewReader(buf.String()), []TableSpec{
		customerSpec(),
		{Name: "customer_base", Columns: []Column{
			{Name: "id", Type: Int},
			{Name: "name", Type: String, Nullable: true},
			{Name: "zip", Type: Int},
		}, PrimaryKey: []string{"id"}},
		{Name: "place", Columns: []Column{
			{Name: "zip", Type: Int},
			{Name: "city", Type: String, Nullable: true},
		}, PrimaryKey: []string{"zip"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db2.Recover(context.Background(), "customer_base", "place")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DroppedTargets) != 2 {
		t.Fatalf("DroppedTargets = %v, want both targets", rep.DroppedTargets)
	}
	for _, name := range db2.Tables() {
		if name != "customer" {
			t.Errorf("unexpected table %s after Recover", name)
		}
	}
	if n, _ := db2.Rows("customer"); n != 2 {
		t.Fatalf("customer has %d rows, want 2", n)
	}
}
