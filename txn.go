package nbschema

import (
	"errors"
	"fmt"

	"nbschema/internal/catalog"
	"nbschema/internal/engine"
	"nbschema/internal/lock"
	"nbschema/internal/value"
)

// Errors surfaced to applications. Engine errors wrap these sentinels.
var (
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = engine.ErrTxnDone
	// ErrTxnDoomed reports that a schema transformation's synchronization
	// has marked the transaction for abort; call Abort and retry.
	ErrTxnDoomed = engine.ErrTxnDoomed
	// ErrNoAccess reports access to a table that is hidden or being
	// dropped by a transformation; retry against the new table.
	ErrNoAccess = engine.ErrNoAccess
	// ErrDeadlock reports that the waits-for cycle detector chose this
	// transaction as a deadlock victim; abort it and retry.
	ErrDeadlock = lock.ErrDeadlock
	// ErrLockTimeout reports a lock wait timeout. Deadlocks are detected and
	// aborted promptly (ErrDeadlock); a timeout means a genuinely slow
	// holder and remains the backstop.
	ErrLockTimeout = lock.ErrTimeout
	// ErrNoSuchTable reports a reference to a missing table — possibly one
	// a completed transformation dropped; retry against the new table.
	ErrNoSuchTable = catalog.ErrNotFound
	// ErrWriteConflict reports a first-committer-wins write-write conflict
	// (Options.SnapshotReads only): another transaction committed a newer
	// version of the record after this transaction began. Abort and retry.
	ErrWriteConflict = engine.ErrWriteConflict
	// ErrSnapshotsOff reports DB.Snapshot on a database opened without
	// Options.SnapshotReads.
	ErrSnapshotsOff = engine.ErrSnapshotsOff
)

// Txn is a transaction handle. A Txn is intended for a single goroutine.
type Txn struct {
	t  *engine.Txn
	db *DB
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn { return &Txn{t: db.eng.Begin(), db: db} }

// ID returns the transaction identifier.
func (tx *Txn) ID() uint64 { return uint64(tx.t.ID()) }

// Doomed reports whether a transformation has marked this transaction for
// forced abort.
func (tx *Txn) Doomed() bool { return tx.t.Doomed() }

// Insert adds a row; vals are given in column order and converted from Go
// values (int/int64, float64, string, []byte, bool, nil).
func (tx *Txn) Insert(table string, vals ...any) error {
	row, err := toTuple(vals)
	if err != nil {
		return err
	}
	return tx.t.Insert(table, row)
}

// Update overwrites the named columns of the row under key.
func (tx *Txn) Update(table string, key []any, cols []string, vals []any) error {
	k, err := toTuple(key)
	if err != nil {
		return err
	}
	v, err := toTuple(vals)
	if err != nil {
		return err
	}
	return tx.t.Update(table, k, cols, v)
}

// Delete removes the row under key.
func (tx *Txn) Delete(table string, key ...any) error {
	k, err := toTuple(key)
	if err != nil {
		return err
	}
	return tx.t.Delete(table, k)
}

// Get reads the row under key with a shared lock held until commit/abort.
func (tx *Txn) Get(table string, key ...any) ([]any, error) {
	k, err := toTuple(key)
	if err != nil {
		return nil, err
	}
	row, err := tx.t.Get(table, k)
	if err != nil {
		return nil, err
	}
	return fromTuple(row), nil
}

// Commit makes the transaction durable and releases its locks.
func (tx *Txn) Commit() error { return tx.t.Commit() }

// Abort rolls the transaction back.
func (tx *Txn) Abort() error { return tx.t.Abort() }

// toTuple converts Go values to a storage tuple.
func toTuple(vals []any) (value.Tuple, error) {
	t := make(value.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			t[i] = value.Null()
		case bool:
			t[i] = value.Bool(x)
		case int:
			t[i] = value.Int(int64(x))
		case int32:
			t[i] = value.Int(int64(x))
		case int64:
			t[i] = value.Int(x)
		case float64:
			t[i] = value.Float(x)
		case string:
			t[i] = value.Str(x)
		case []byte:
			t[i] = value.Bytes(x)
		case value.Value:
			t[i] = x
		default:
			return nil, fmt.Errorf("nbschema: unsupported value type %T at position %d", v, i)
		}
	}
	return t, nil
}

// fromTuple converts a storage tuple back to Go values.
func fromTuple(t value.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case value.KindNull:
			out[i] = nil
		case value.KindBool:
			out[i] = v.AsBool()
		case value.KindInt:
			out[i] = v.AsInt()
		case value.KindFloat:
			out[i] = v.AsFloat()
		case value.KindString:
			out[i] = v.AsString()
		case value.KindBytes:
			out[i] = v.AsBytes()
		}
	}
	return out
}

// IsRetryable reports whether err indicates the transaction should be
// aborted and retried (deadlock victim, lock timeout, snapshot write-write
// conflict, or a transformation dooming/denying it).
func IsRetryable(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrLockTimeout) ||
		errors.Is(err, ErrTxnDoomed) || errors.Is(err, ErrNoAccess) ||
		errors.Is(err, ErrNoSuchTable) || errors.Is(err, ErrWriteConflict)
}
