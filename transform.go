package nbschema

import (
	"time"

	"nbschema/internal/core"
	"nbschema/internal/obs"
)

// JoinSpec describes a full outer join transformation R ⟗ S → Target
// (paper Section 4). See core.JoinSpec for field semantics.
type JoinSpec = core.JoinSpec

// SplitSpec describes a vertical split transformation T → Left, Right
// (paper Section 5).
type SplitSpec = core.SplitSpec

// SyncStrategy selects how synchronization completes a transformation.
type SyncStrategy = core.SyncStrategy

// The three synchronization strategies of §3.4.
const (
	// NonBlockingAbort force-aborts transactions still active on the
	// sources after a sub-millisecond latch window (the paper's default).
	NonBlockingAbort = core.NonBlockingAbort
	// NonBlockingCommit lets old transactions finish against the old
	// tables, mirroring locks between old and new.
	NonBlockingCommit = core.NonBlockingCommit
	// BlockingCommit drains the sources before switching (baseline; blocks
	// new transactions).
	BlockingCommit = core.BlockingCommit
)

// CompactionMode selects whether log propagation coalesces each interval's
// backlog to its per-key net effect before replay (see
// Options.CompactPropagation and TransformOptions.CompactPropagation).
type CompactionMode = core.CompactionMode

// Compaction modes. The zero value (CompactionDefault) inherits the
// surrounding default, which is on.
const (
	CompactionDefault = core.CompactionDefault
	CompactionOn      = core.CompactionOn
	CompactionOff     = core.CompactionOff
)

// Phase is a transformation lifecycle phase.
type Phase = core.Phase

// Transformation phases.
const (
	PhaseIdle          = core.PhaseIdle
	PhasePreparing     = core.PhasePreparing
	PhasePopulating    = core.PhasePopulating
	PhasePropagating   = core.PhasePropagating
	PhaseSynchronizing = core.PhaseSynchronizing
	PhaseDraining      = core.PhaseDraining
	PhaseDone          = core.PhaseDone
	PhaseAborted       = core.PhaseAborted
)

// Metrics reports what a transformation did.
type Metrics = core.Metrics

// Freshness is a snapshot of a transformation's freshness watermarks: the
// applied-LSN high-water mark, the record backlog, and the wall-clock lag
// (age of the oldest unapplied timestamped commit) — the number an operator
// reads before deciding it is safe to switch applications over. Obtain one
// from Transformation.Freshness; Freshness.SwitchoverReady(maxLag) is the
// probe. Served per transformation at /debug/lag.
type Freshness = core.Freshness

// Progress is a live snapshot of a running transformation: phase, iteration,
// backlog, observed propagation rate, and an ETA derived the same way
// EstimateAnalyzer decides synchronization (§3.3). Obtain one from
// Transformation.Progress at any time, from any goroutine.
type Progress = core.Progress

// TraceEvent is one structured event of a transformation's trace: phase
// transitions, fuzzy marks, population chunks, propagation iterations with
// per-rule applied counts, synchronization latching, switchover, stalls, and
// completion. Read the buffered trace with Transformation.Trace or stream
// events live via TransformOptions.Trace.
type TraceEvent = obs.Event

// TraceSink receives trace events as they happen. RingSink (the built-in
// default), FuncSink and MultiSink implement it.
type TraceSink = obs.Sink

// TraceFunc adapts a function to a TraceSink.
type TraceFunc = obs.FuncSink

// Transformation is a running (or completed) schema transformation. Create
// one with DB.FullOuterJoin or DB.Split, then call Run; user transactions
// proceed concurrently for the entire duration.
type Transformation = core.Transformation

// Transformation errors.
var (
	// ErrStalled reports that log propagation could not keep up and the
	// transformation was configured to give up.
	ErrStalled = core.ErrStalled
	// ErrTransformAborted reports that the transformation was cancelled;
	// its target tables were deleted.
	ErrTransformAborted = core.ErrAborted
	// ErrInconsistentData reports a split whose source violates the
	// functional dependency on the split attributes (paper Example 1).
	ErrInconsistentData = core.ErrInconsistentData
)

// TransformOptions tunes a transformation. The zero value runs at full
// priority with non-blocking abort synchronization.
type TransformOptions struct {
	// Priority in (0, 1] is the fraction of time the background
	// transformation may consume; lower values interfere less with user
	// transactions but take longer (paper Fig. 4d). 0 selects 1.0.
	Priority float64
	// Strategy selects the synchronization strategy (§3.4).
	Strategy SyncStrategy
	// SyncThreshold starts synchronization when at most this many log
	// records remain to propagate (count-based analysis, §3.3). 0 selects
	// 64. Ignored when SyncWithin is set.
	SyncThreshold int
	// SyncWithin starts synchronization when the estimated remaining
	// propagation time drops below this duration (estimate-based analysis).
	SyncWithin time.Duration
	// AbortOnStall gives up (instead of raising priority) when the log
	// grows faster than it can be propagated.
	AbortOnStall bool
	// StallTimeout bounds one propagation iteration before the stall
	// policy fires (0 disables the in-iteration check).
	StallTimeout time.Duration
	// CheckConsistency enables §5.3 handling for splits of possibly
	// inconsistent data: C/U flags plus the background consistency checker.
	CheckConsistency bool
	// KeepSources leaves the (closed) source tables in place after the
	// transformation instead of deleting them.
	KeepSources bool
	// MaxIterations bounds propagation cycles (0 = unlimited).
	MaxIterations int
	// PropagateWorkers is the number of workers used for parallel initial
	// population and (for operators that support it) parallel log
	// propagation of independent-key batches. 0 inherits the database-wide
	// Options.PropagateWorkers (itself defaulting to GOMAXPROCS, capped at
	// 16); 1 runs population and propagation serially.
	PropagateWorkers int
	// CompactPropagation selects net-effect compaction of each propagation
	// interval before replay (operators that support it; splits do, FOJ
	// replays raw): runs of updates to one source row coalesce to a single
	// update, and an insert that is deleted again within the interval
	// collapses to its trailing delete. CompactionDefault inherits the
	// database-wide Options.CompactPropagation (itself defaulting to on);
	// CompactionOff replays the raw log — the ablation baseline, best
	// paired with PropagateWorkers=1 for a fully serial reference run.
	CompactPropagation CompactionMode
	// Trace streams the transformation's structured trace events to a
	// custom sink as they happen, in addition to the bounded in-memory ring
	// readable via Transformation.Trace. Nil keeps just the ring.
	Trace TraceSink
	// FuzzyPopulation forces the fuzzy-scan initial population — the 2PL
	// ablation arm — on a database opened with Options.SnapshotReads, which
	// otherwise builds the initial image from a transactionally consistent
	// snapshot. Ignored (population is always fuzzy) without SnapshotReads.
	FuzzyPopulation bool
	// LagSLO is the freshness service-level objective this transformation is
	// judged against: entering synchronization logs an EventFreshness trace
	// event that names a violation when the source-commit→target-apply lag
	// watermark exceeds it (see Transformation.Freshness and
	// Transformation.SwitchoverReady). 0 inherits the database-wide
	// Options.LagSLO.
	LagSLO time.Duration
}

func (o TransformOptions) config(db *DB) core.Config {
	cfg := core.Config{
		Priority:         o.Priority,
		Strategy:         o.Strategy,
		CheckConsistency: o.CheckConsistency,
		KeepSources:      o.KeepSources,
		MaxIterations:    o.MaxIterations,
		StallTimeout:     o.StallTimeout,
		PropagateWorkers: o.PropagateWorkers,
		Compaction:       o.CompactPropagation,
		Sink:             o.Trace,
		LagSLO:           o.LagSLO,
		SnapshotPopulate: db.snapshotReads && !o.FuzzyPopulation,
	}
	if cfg.LagSLO == 0 {
		cfg.LagSLO = db.lagSLO
	}
	if cfg.PropagateWorkers == 0 {
		cfg.PropagateWorkers = db.propagateWorkers
	}
	if cfg.Compaction == core.CompactionDefault {
		cfg.Compaction = db.compactPropagation
	}
	if o.AbortOnStall {
		cfg.StallPolicy = core.StallAbort
	}
	switch {
	case o.SyncWithin > 0:
		cfg.Analyzer = core.EstimateAnalyzer(o.SyncWithin)
	case o.SyncThreshold > 0:
		cfg.Analyzer = core.CountAnalyzer(o.SyncThreshold)
	}
	if db.flight != nil {
		// A stalling or aborting transformation is a flight-recorder trigger:
		// the trace and backlog that explain it are gone once the run ends.
		trigger := obs.FuncSink(func(ev obs.Event) {
			switch ev.Kind {
			case obs.EventStall:
				_, _ = db.flight.Trigger("transform-stall")
			case obs.EventAbort:
				_, _ = db.flight.Trigger("transform-abort")
			}
		})
		if cfg.Sink != nil {
			cfg.Sink = obs.MultiSink{cfg.Sink, trigger}
		} else {
			cfg.Sink = trigger
		}
	}
	return cfg
}

// FullOuterJoin prepares a non-blocking full outer join transformation.
// Nothing runs until Transformation.Run is called.
func (db *DB) FullOuterJoin(spec JoinSpec, opts TransformOptions) (*Transformation, error) {
	tr, err := core.NewFullOuterJoin(db.eng, spec, opts.config(db))
	if err != nil {
		return nil, err
	}
	db.track(tr)
	return tr, nil
}

// Split prepares a non-blocking vertical split transformation.
func (db *DB) Split(spec SplitSpec, opts TransformOptions) (*Transformation, error) {
	tr, err := core.NewSplit(db.eng, spec, opts.config(db))
	if err != nil {
		return nil, err
	}
	db.track(tr)
	return tr, nil
}

// track registers a transformation for Transformations and the debug surface.
func (db *DB) track(tr *Transformation) {
	db.trMu.Lock()
	db.transforms = append(db.transforms, tr)
	db.trMu.Unlock()
}
